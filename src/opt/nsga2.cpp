#include "opt/nsga2.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "exec/batch.hpp"

namespace ehdse::opt {

bool dominates(const numeric::vec& a, const numeric::vec& b) {
    if (a.size() != b.size())
        throw std::invalid_argument("dominates: objective count mismatch");
    bool strictly_better = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] < b[i]) return false;
        if (a[i] > b[i]) strictly_better = true;
    }
    return strictly_better;
}

std::vector<std::size_t> non_dominated_sort(
    const std::vector<numeric::vec>& objectives) {
    const std::size_t n = objectives.size();
    std::vector<std::size_t> rank(n, 0);
    std::vector<int> domination_count(n, 0);
    std::vector<std::vector<std::size_t>> dominated_by(n);

    std::vector<std::size_t> current_front;
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < n; ++q) {
            if (p == q) continue;
            if (dominates(objectives[p], objectives[q]))
                dominated_by[p].push_back(q);
            else if (dominates(objectives[q], objectives[p]))
                ++domination_count[p];
        }
        if (domination_count[p] == 0) {
            rank[p] = 0;
            current_front.push_back(p);
        }
    }

    std::size_t front_index = 0;
    while (!current_front.empty()) {
        std::vector<std::size_t> next_front;
        for (std::size_t p : current_front)
            for (std::size_t q : dominated_by[p])
                if (--domination_count[q] == 0) {
                    rank[q] = front_index + 1;
                    next_front.push_back(q);
                }
        ++front_index;
        current_front = std::move(next_front);
    }
    return rank;
}

namespace {

/// Crowding distance within one front (index list into `objectives`).
std::vector<double> crowding_distances(
    const std::vector<numeric::vec>& objectives,
    const std::vector<std::size_t>& front) {
    const std::size_t m = front.empty() ? 0 : objectives[front[0]].size();
    std::vector<double> crowd(objectives.size(), 0.0);
    for (std::size_t obj = 0; obj < m; ++obj) {
        std::vector<std::size_t> order = front;
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return objectives[a][obj] < objectives[b][obj];
        });
        const double lo = objectives[order.front()][obj];
        const double hi = objectives[order.back()][obj];
        crowd[order.front()] = std::numeric_limits<double>::infinity();
        crowd[order.back()] = std::numeric_limits<double>::infinity();
        if (hi <= lo) continue;
        for (std::size_t i = 1; i + 1 < order.size(); ++i)
            crowd[order[i]] += (objectives[order[i + 1]][obj] -
                                objectives[order[i - 1]][obj]) /
                               (hi - lo);
    }
    return crowd;
}

}  // namespace

std::vector<pareto_point> nsga2::optimize(const multi_objective_fn& f,
                                          std::size_t objective_count,
                                          const box_bounds& bounds,
                                          numeric::rng& rng) const {
    bounds.validate();
    if (objective_count == 0)
        throw std::invalid_argument("nsga2: need at least one objective");
    if (opt_.population < 4)
        throw std::invalid_argument("nsga2: population must be >= 4");
    const std::size_t np = opt_.population + (opt_.population % 2);
    const std::size_t k = bounds.dimension();

    // Batch objective evaluation (through the attached pool, if any).
    // Generation stays on the calling thread, so results are identical
    // whether or not a pool is attached.
    auto evaluate_batch = [&](const std::vector<numeric::vec>& xs) {
        std::vector<numeric::vec> objs(xs.size());
        exec::parallel_for(pool_, xs.size(), [&](std::size_t i) {
            numeric::vec o = f(xs[i]);
            if (o.size() != objective_count)
                throw std::invalid_argument("nsga2: objective size mismatch");
            objs[i] = std::move(o);
        });
        return objs;
    };

    std::vector<numeric::vec> pop(np);
    for (std::size_t i = 0; i < np; ++i) pop[i] = bounds.random_point(rng);
    std::vector<numeric::vec> obj = evaluate_batch(pop);

    for (std::size_t gen = 0; gen < opt_.generations; ++gen) {
        const auto rank = non_dominated_sort(obj);
        // Crowding over the whole population per front.
        std::vector<std::vector<std::size_t>> fronts;
        for (std::size_t i = 0; i < np; ++i) {
            if (rank[i] >= fronts.size()) fronts.resize(rank[i] + 1);
            fronts[rank[i]].push_back(i);
        }
        std::vector<double> crowd(np, 0.0);
        for (const auto& front : fronts) {
            const auto fc = crowding_distances(obj, front);
            for (std::size_t i : front) crowd[i] = fc[i];
        }

        auto tournament = [&]() -> std::size_t {
            const std::size_t a = rng.uniform_index(np);
            const std::size_t b = rng.uniform_index(np);
            if (rank[a] != rank[b]) return rank[a] < rank[b] ? a : b;
            return crowd[a] >= crowd[b] ? a : b;
        };

        // Offspring: breed the full brood, then evaluate it as one batch.
        std::vector<numeric::vec> child_pop;
        child_pop.reserve(np);
        while (child_pop.size() < np) {
            const numeric::vec& pa = pop[tournament()];
            const numeric::vec& pb = pop[tournament()];
            numeric::vec child(k);
            if (rng.bernoulli(opt_.crossover_prob)) {
                for (std::size_t i = 0; i < k; ++i) {
                    const double lo = std::min(pa[i], pb[i]);
                    const double hi = std::max(pa[i], pb[i]);
                    const double pad = opt_.blx_alpha * (hi - lo);
                    child[i] = rng.uniform(lo - pad, hi + pad);
                }
            } else {
                child = pa;
            }
            for (std::size_t i = 0; i < k; ++i)
                if (rng.bernoulli(opt_.mutation_prob))
                    child[i] += rng.normal(0.0, opt_.mutation_sigma_fraction *
                                                    bounds.width(i));
            child_pop.push_back(bounds.clamp(std::move(child)));
        }
        std::vector<numeric::vec> child_obj = evaluate_batch(child_pop);

        // Environmental selection over parents + offspring.
        std::vector<numeric::vec> union_pop = pop;
        std::vector<numeric::vec> union_obj = obj;
        union_pop.insert(union_pop.end(), child_pop.begin(), child_pop.end());
        union_obj.insert(union_obj.end(), child_obj.begin(), child_obj.end());

        const auto union_rank = non_dominated_sort(union_obj);
        std::vector<std::vector<std::size_t>> union_fronts;
        for (std::size_t i = 0; i < union_pop.size(); ++i) {
            if (union_rank[i] >= union_fronts.size())
                union_fronts.resize(union_rank[i] + 1);
            union_fronts[union_rank[i]].push_back(i);
        }

        std::vector<std::size_t> selected;
        for (const auto& front : union_fronts) {
            if (selected.size() + front.size() <= np) {
                selected.insert(selected.end(), front.begin(), front.end());
            } else {
                const auto fc = crowding_distances(union_obj, front);
                std::vector<std::size_t> order = front;
                std::sort(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) { return fc[a] > fc[b]; });
                const std::size_t need = np - selected.size();
                selected.insert(selected.end(), order.begin(),
                                order.begin() + static_cast<std::ptrdiff_t>(need));
            }
            if (selected.size() >= np) break;
        }

        std::vector<numeric::vec> new_pop, new_obj;
        new_pop.reserve(np);
        for (std::size_t idx : selected) {
            new_pop.push_back(std::move(union_pop[idx]));
            new_obj.push_back(std::move(union_obj[idx]));
        }
        pop = std::move(new_pop);
        obj = std::move(new_obj);
    }

    // Extract the final first front, deduplicated by objective vector.
    const auto rank = non_dominated_sort(obj);
    std::vector<pareto_point> front;
    for (std::size_t i = 0; i < np; ++i)
        if (rank[i] == 0) front.push_back({pop[i], obj[i]});
    std::sort(front.begin(), front.end(),
              [](const pareto_point& a, const pareto_point& b) {
                  return a.objectives[0] < b.objectives[0];
              });
    front.erase(std::unique(front.begin(), front.end(),
                            [](const pareto_point& a, const pareto_point& b) {
                                return a.objectives == b.objectives;
                            }),
                front.end());
    return front;
}

}  // namespace ehdse::opt
