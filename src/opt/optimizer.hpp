// Common optimiser interface (paper section V uses MATLAB's Simulated
// Annealing and Genetic Algorithm; we implement both, plus deterministic
// baselines, against one box-constrained maximisation interface).
//
// All optimisers MAXIMISE the objective over an axis-aligned box — the
// coded [-1,1]^k design space in the paper's flow, but any box works.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "numeric/matrix.hpp"
#include "numeric/rng.hpp"

namespace ehdse::exec {
class thread_pool;
}  // namespace ehdse::exec

namespace ehdse::opt {

/// Objective to maximise.
using objective_fn = std::function<double(const numeric::vec&)>;

/// Axis-aligned search box.
struct box_bounds {
    numeric::vec lo;
    numeric::vec hi;

    /// The coded RSM box [-1,1]^k.
    static box_bounds unit(std::size_t k);

    std::size_t dimension() const noexcept { return lo.size(); }

    /// Throws std::invalid_argument unless lo < hi elementwise.
    void validate() const;

    /// Clamp a point into the box (in place, returns the point).
    numeric::vec clamp(numeric::vec x) const;

    bool contains(const numeric::vec& x, double tol = 1e-12) const;

    /// Uniform random point inside the box.
    numeric::vec random_point(numeric::rng& rng) const;

    /// Box edge length along axis i.
    double width(std::size_t i) const { return hi.at(i) - lo.at(i); }
};

/// Outcome of one optimisation run.
struct opt_result {
    numeric::vec best_x;
    double best_value = 0.0;
    std::size_t evaluations = 0;
    std::size_t iterations = 0;
    bool converged = false;      ///< stopping rule was met (vs budget exhausted)
    std::string algorithm;

    // Per-run telemetry (feeds obs::optimizer_record / run manifests).
    /// Proposal moves offered to an acceptance rule (SA Metropolis steps);
    /// 0 for optimisers without an acceptance notion.
    std::size_t proposed_moves = 0;
    /// Accepted proposal moves.
    std::size_t accepted_moves = 0;
    /// Best-so-far objective value after each iteration (SA epoch, GA
    /// generation); empty when an optimiser does not track it.
    std::vector<double> trajectory;

    /// accepted_moves / proposed_moves, or -1 when not applicable.
    double acceptance_rate() const noexcept {
        if (proposed_moves == 0) return -1.0;
        return static_cast<double>(accepted_moves) /
               static_cast<double>(proposed_moves);
    }
};

/// Abstract optimiser. Implementations are deterministic given the rng.
class optimizer {
public:
    virtual ~optimizer() = default;

    virtual std::string name() const = 0;

    /// Maximise `f` over `bounds` using randomness from `rng`.
    virtual opt_result maximize(const objective_fn& f, const box_bounds& bounds,
                                numeric::rng& rng) const = 0;

    /// Attach a pool that evaluate_all fans candidate batches over
    /// (nullptr = evaluate sequentially). Non-owning — the pool must
    /// outlive every maximize() call, and the objective must be
    /// thread-safe while a pool is attached. Candidate GENERATION still
    /// happens on the calling thread in a fixed order, so results are
    /// identical with or without a pool for optimisers whose objective
    /// evaluations never touch the rng stream (GA, NSGA-II).
    void set_execution(exec::thread_pool* pool) noexcept { pool_ = pool; }
    exec::thread_pool* execution() const noexcept { return pool_; }

protected:
    /// Evaluate f at each point of xs, returning values in input order.
    /// Uses the attached pool when present, inline otherwise; either way
    /// the first objective exception is rethrown.
    std::vector<double> evaluate_all(const objective_fn& f,
                                     const std::vector<numeric::vec>& xs) const;

private:
    exec::thread_pool* pool_ = nullptr;
};

/// One registry entry: a constructible optimiser name plus a one-line
/// description (what `ehdse_cli --list-optimizers` prints).
struct optimizer_info {
    std::string name;
    std::string description;
};

/// Every name make_optimizer accepts, in presentation order.
const std::vector<optimizer_info>& optimizer_registry();

/// True when `name` resolves through make_optimizer.
bool is_known_optimizer(std::string_view name);

/// Comma-separated registry names — the "valid: ..." list error messages
/// and `--list-optimizers` share.
std::string optimizer_names();

/// Construct a single-objective optimiser from its name() string — the
/// registry that lets a serialised experiment spec (spec::flow_spec::
/// optimizers) name its algorithms: "simulated-annealing",
/// "genetic-algorithm", "nelder-mead", "pattern-search", "random-search",
/// "particle-swarm", "differential-evolution". Default options; throws
/// std::invalid_argument (name echoed, valid choices listed) for anything
/// else.
std::shared_ptr<optimizer> make_optimizer(std::string_view name);

}  // namespace ehdse::opt
