// Population optimisers beyond the paper's pair: particle swarm (global
// best topology, constriction form) and differential evolution
// (DE/rand/1/bin). Both widen the optimiser-ablation study and give users
// alternatives when the response surface is rougher than a quadratic.
#pragma once

#include "opt/optimizer.hpp"

namespace ehdse::opt {

struct pso_options {
    std::size_t particles = 40;
    std::size_t iterations = 300;
    double inertia = 0.729;          ///< Clerc constriction values
    double cognitive = 1.49445;
    double social = 1.49445;
    double max_velocity_fraction = 0.25;  ///< of box width per axis
    std::size_t stall_iterations = 60;
    double stall_tolerance = 1e-10;
};

class particle_swarm final : public optimizer {
public:
    explicit particle_swarm(pso_options options = {}) : opt_(options) {}

    std::string name() const override { return "particle-swarm"; }

    opt_result maximize(const objective_fn& f, const box_bounds& bounds,
                        numeric::rng& rng) const override;

private:
    pso_options opt_;
};

struct de_options {
    std::size_t population = 40;
    std::size_t generations = 300;
    double differential_weight = 0.7;  ///< F
    double crossover_prob = 0.9;       ///< CR
    std::size_t stall_generations = 60;
    double stall_tolerance = 1e-10;
};

class differential_evolution final : public optimizer {
public:
    explicit differential_evolution(de_options options = {}) : opt_(options) {}

    std::string name() const override { return "differential-evolution"; }

    opt_result maximize(const objective_fn& f, const box_bounds& bounds,
                        numeric::rng& rng) const override;

private:
    de_options opt_;
};

}  // namespace ehdse::opt
