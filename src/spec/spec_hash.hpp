// Stable 64-bit content hash over an experiment spec — the identity a
// persistent cache, a request server, or a manifest can address a run
// by. The hash is computed from the raw field values (doubles by bit
// pattern, vectors length-prefixed, every field preceded by a fixed tag)
// with a splitmix64-finalised combine, so it is independent of platform,
// build, and process — the SAME spec always yields the SAME hash, and
// spec_test pins reference values so an accidental change to the hashed
// field set fails loudly.
//
// The hash does NOT canonicalise its input: hash the result of
// canonicalized() when two observably-equivalent specs must collide
// (cached_evaluator does exactly that). Hash inequality proves spec
// inequality; equality is a 64-bit bucket route — callers needing
// certainty compare the specs themselves (operator==).
//
// k_spec_hash_version bumps whenever the field set or encoding changes;
// it is mixed into every hash so stale persisted keys can never alias a
// new layout.
#pragma once

#include <cstdint>
#include <string>

#include "spec/experiment_spec.hpp"

namespace ehdse::spec {

/// Version 3: the spec gained the harvester section (schema /3).
inline constexpr std::uint64_t k_spec_hash_version = 3;

std::uint64_t spec_hash(const scenario& s) noexcept;
std::uint64_t spec_hash(const harvester_spec& h) noexcept;
std::uint64_t spec_hash(const system_config& c) noexcept;
std::uint64_t spec_hash(const evaluation_options& e) noexcept;
std::uint64_t spec_hash(const flow_spec& f) noexcept;
/// Combine of the five part hashes plus the version.
std::uint64_t spec_hash(const experiment_spec& spec) noexcept;

/// Hash of one evaluation request against a fixed scenario — what
/// dse::cached_evaluator keys on: (config, evaluation options), version
/// mixed in.
std::uint64_t evaluation_request_hash(const system_config& config,
                                      const evaluation_options& eval) noexcept;

/// "0123456789abcdef"-style fixed-width lower-case hex, the form manifests
/// and CLI output use (JSON numbers cannot carry 64 bits exactly).
std::string spec_hash_hex(std::uint64_t hash);

}  // namespace ehdse::spec
