#include "spec/experiment_spec.hpp"

#include <stdexcept>
#include <string>

#include "doe/design.hpp"
#include "harvester/harvester_model.hpp"
#include "opt/optimizer.hpp"
#include "rsm/surrogate.hpp"

namespace ehdse::spec {

namespace {

[[noreturn]] void fail(const std::string& message) {
    throw std::invalid_argument("experiment_spec: " + message);
}

/// Shared schedule shape check: first entry at t = 0, strictly increasing
/// times, non-negative times and values (harvester::vibration_source's
/// contract, surfaced here with the offending field named).
void validate_schedule(const std::vector<std::pair<double, double>>& schedule,
                       const char* field, const char* value_name,
                       bool value_positive) {
    if (schedule.empty()) return;
    if (schedule.front().first != 0.0)
        fail(std::string(field) + "[0].time must be 0 (got " +
             std::to_string(schedule.front().first) + ")");
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const auto& [t, v] = schedule[i];
        const std::string at = std::string(field) + "[" + std::to_string(i) + "]";
        if (!(t >= 0.0)) fail(at + ".time must be >= 0");
        if (i > 0 && !(t > schedule[i - 1].first))
            fail(at + ".time must be strictly increasing");
        if (value_positive ? !(v > 0.0) : !(v >= 0.0))
            fail(at + "." + value_name +
                 (value_positive ? " must be > 0" : " must be >= 0"));
    }
}

}  // namespace

harvester::vibration_source scenario::make_vibration() const {
    harvester::vibration_source src =
        frequency_schedule.empty()
            ? harvester::vibration_source::stepped_mg(
                  accel_mg, f_start_hz, f_step_hz, step_period_s, step_count)
            : harvester::vibration_source::from_schedule(
                  accel_mg * 1e-3 * harvester::k_gravity, frequency_schedule);
    if (!amplitude_schedule.empty())
        src = src.with_amplitude_schedule(amplitude_schedule);
    return src;
}

void scenario::validate() const {
    if (!(duration_s > 0.0)) fail("scenario.duration_s must be > 0");
    if (!(accel_mg >= 0.0)) fail("scenario.accel_mg must be >= 0");
    if (!(v_initial >= 0.0)) fail("scenario.v_initial must be >= 0");
    if (initial_position < -1) fail("scenario.initial_position must be >= -1");
    if (frequency_schedule.empty()) {
        if (!(f_start_hz > 0.0)) fail("scenario.f_start_hz must be > 0");
        if (!(step_period_s > 0.0)) fail("scenario.step_period_s must be > 0");
    }
    validate_schedule(frequency_schedule, "scenario.frequency_schedule",
                      "frequency_hz", /*value_positive=*/true);
    validate_schedule(amplitude_schedule, "scenario.amplitude_schedule",
                      "scale", /*value_positive=*/false);
}

scenario scenario::canonicalized() const {
    scenario out = *this;
    if (!frequency_schedule.empty()) {
        const scenario defaults;
        out.f_start_hz = defaults.f_start_hz;
        out.f_step_hz = defaults.f_step_hz;
        out.step_period_s = defaults.step_period_s;
        out.step_count = defaults.step_count;
    }
    return out;
}

void harvester_spec::validate() const {
    if (!harvester::is_known_harvester(model))
        fail("harvester.model: unknown harvester '" + model + "' (valid: " +
             harvester::harvester_names() + ")");
}

system_config system_config::from_vector(const numeric::vec& v) {
    if (v.size() != 3)
        throw std::invalid_argument("system_config::from_vector: need 3 entries");
    system_config c;
    c.mcu_clock_hz = v[0];
    c.watchdog_period_s = v[1];
    c.tx_interval_s = v[2];
    return c;
}

void system_config::validate() const {
    if (!(mcu_clock_hz > 0.0)) fail("config.mcu_clock_hz must be > 0");
    if (!(watchdog_period_s > 0.0)) fail("config.watchdog_period_s must be > 0");
    if (!(tx_interval_s > 0.0)) fail("config.tx_interval_s must be > 0");
}

void evaluation_options::validate() const {
    if (!(trace_interval_s > 0.0)) fail("evaluation.trace_interval_s must be > 0");
    if (!(frontend_efficiency > 0.0 && frontend_efficiency <= 1.0))
        fail("evaluation.frontend_efficiency must be in (0, 1]");
}

evaluation_options evaluation_options::canonicalized() const {
    evaluation_options out = *this;
    const evaluation_options defaults;
    if (!out.record_traces) out.trace_interval_s = defaults.trace_interval_s;
    if (out.model == fidelity::transient) out.frontend = defaults.frontend;
    if (out.model == fidelity::transient ||
        out.frontend == frontend_kind::diode_bridge)
        out.frontend_efficiency = defaults.frontend_efficiency;
    return out;
}

void flow_spec::validate() const {
    if (doe_runs < 1) fail("flow.doe_runs must be >= 1");
    if (factorial_levels < 2) fail("flow.factorial_levels must be >= 2");
    if (!doe::is_known_design(design))
        fail("flow.design: unknown design '" + design + "' (valid: " +
             doe::design_names() + ")");
    if (!rsm::is_known_surrogate(surrogate))
        fail("flow.surrogate: unknown surrogate '" + surrogate +
             "' (valid: " + rsm::surrogate_names() + ")");
    for (const std::string& name : optimizers)
        if (!opt::is_known_optimizer(name))
            fail("flow.optimizers: unknown optimizer '" + name +
                 "' (valid: " + opt::optimizer_names() + ")");
    if (replicates < 1) fail("flow.replicates must be >= 1");
    if (cache && cache_capacity < 1)
        fail("flow.cache_capacity must be >= 1 when the cache is on");
}

flow_spec flow_spec::canonicalized() const {
    flow_spec out = *this;
    const flow_spec defaults;
    if (!out.parallel) out.jobs = defaults.jobs;
    if (!out.cache) out.cache_capacity = defaults.cache_capacity;
    if (out.replicates <= 1) out.replicate_seed_base = defaults.replicate_seed_base;
    // Design knobs the chosen family never reads (e.g. doe_runs under
    // box_behnken) cannot be observed; leave unknown names untouched so
    // canonicalized() stays total — validate() rejects them separately.
    if (doe::is_known_design(out.design)) {
        if (!doe::design_uses_runs(out.design)) out.doe_runs = defaults.doe_runs;
        if (!doe::design_uses_levels(out.design))
            out.factorial_levels = defaults.factorial_levels;
    }
    return out;
}

void experiment_spec::validate() const {
    scn.validate();
    harv.validate();
    config.validate();
    eval.validate();
    flow.validate();
}

experiment_spec experiment_spec::canonicalized() const {
    return {scn.canonicalized(), harv.canonicalized(), config,
            eval.canonicalized(), flow.canonicalized()};
}

}  // namespace ehdse::spec
