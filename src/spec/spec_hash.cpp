#include "spec/spec_hash.hpp"

#include <bit>

namespace ehdse::spec {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
    // splitmix64 finaliser over a running combine.
    v += 0x9e3779b97f4a7c15ULL + h;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
    return v ^ (v >> 31);
}

std::uint64_t bits(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }

std::uint64_t mix_string(std::uint64_t h, const std::string& s) noexcept {
    h = mix(h, s.size());
    for (const char ch : s)
        h = mix(h, static_cast<std::uint64_t>(static_cast<unsigned char>(ch)));
    return h;
}

std::uint64_t mix_schedule(
    std::uint64_t h,
    const std::vector<std::pair<double, double>>& schedule) noexcept {
    h = mix(h, schedule.size());
    for (const auto& [t, v] : schedule) {
        h = mix(h, bits(t));
        h = mix(h, bits(v));
    }
    return h;
}

/// Domain-separated seed per struct so a scenario can never hash like a
/// flow_spec that happens to share field values.
constexpr std::uint64_t k_seed_scenario = 0x5ce7a21000000001ULL;
constexpr std::uint64_t k_seed_config = 0x5ce7a21000000002ULL;
constexpr std::uint64_t k_seed_evaluation = 0x5ce7a21000000003ULL;
constexpr std::uint64_t k_seed_flow = 0x5ce7a21000000004ULL;
constexpr std::uint64_t k_seed_spec = 0x5ce7a21000000005ULL;
constexpr std::uint64_t k_seed_request = 0x5ce7a21000000006ULL;
constexpr std::uint64_t k_seed_harvester = 0x5ce7a21000000007ULL;

}  // namespace

std::uint64_t spec_hash(const scenario& s) noexcept {
    std::uint64_t h = mix(k_seed_scenario, k_spec_hash_version);
    h = mix(h, bits(s.duration_s));
    h = mix(h, bits(s.accel_mg));
    h = mix(h, bits(s.f_start_hz));
    h = mix(h, bits(s.f_step_hz));
    h = mix(h, bits(s.step_period_s));
    h = mix(h, s.step_count);
    h = mix(h, bits(s.v_initial));
    h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(s.initial_position)));
    h = mix_schedule(h, s.frequency_schedule);
    h = mix_schedule(h, s.amplitude_schedule);
    return h;
}

std::uint64_t spec_hash(const harvester_spec& h) noexcept {
    std::uint64_t hash = mix(k_seed_harvester, k_spec_hash_version);
    hash = mix_string(hash, h.model);
    return hash;
}

std::uint64_t spec_hash(const system_config& c) noexcept {
    std::uint64_t h = mix(k_seed_config, k_spec_hash_version);
    h = mix(h, bits(c.mcu_clock_hz));
    h = mix(h, bits(c.watchdog_period_s));
    h = mix(h, bits(c.tx_interval_s));
    return h;
}

std::uint64_t spec_hash(const evaluation_options& e) noexcept {
    std::uint64_t h = mix(k_seed_evaluation, k_spec_hash_version);
    h = mix(h, e.record_traces ? 1 : 0);
    h = mix(h, bits(e.trace_interval_s));
    h = mix(h, e.controller_seed);
    h = mix(h, static_cast<std::uint64_t>(e.model));
    h = mix(h, static_cast<std::uint64_t>(e.frontend));
    h = mix(h, bits(e.frontend_efficiency));
    return h;
}

std::uint64_t spec_hash(const flow_spec& f) noexcept {
    std::uint64_t h = mix(k_seed_flow, k_spec_hash_version);
    h = mix(h, f.doe_runs);
    h = mix(h, f.factorial_levels);
    h = mix_string(h, f.design);
    h = mix_string(h, f.surrogate);
    h = mix(h, f.optimizer_seed);
    h = mix(h, f.replicates);
    h = mix(h, f.replicate_seed_base);
    h = mix(h, f.parallel ? 1 : 0);
    h = mix(h, f.jobs);
    h = mix(h, f.cache ? 1 : 0);
    h = mix(h, f.cache_capacity);
    h = mix(h, f.optimizers.size());
    for (const std::string& name : f.optimizers) h = mix_string(h, name);
    return h;
}

std::uint64_t spec_hash(const experiment_spec& spec) noexcept {
    std::uint64_t h = mix(k_seed_spec, k_spec_hash_version);
    h = mix(h, spec_hash(spec.scn));
    h = mix(h, spec_hash(spec.harv));
    h = mix(h, spec_hash(spec.config));
    h = mix(h, spec_hash(spec.eval));
    h = mix(h, spec_hash(spec.flow));
    return h;
}

std::uint64_t evaluation_request_hash(const system_config& config,
                                      const evaluation_options& eval) noexcept {
    std::uint64_t h = mix(k_seed_request, k_spec_hash_version);
    h = mix(h, spec_hash(config));
    h = mix(h, spec_hash(eval));
    return h;
}

std::string spec_hash_hex(std::uint64_t hash) {
    static constexpr char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
        hash >>= 4;
    }
    return out;
}

}  // namespace ehdse::spec
