// JSON round-trip for experiment_spec via the obs JSON value model.
//
// The encoding is deliberately rigid so a spec document is a stable
// artefact: fields are written in declaration order (obs::json_object
// preserves insertion order), schedules as [[time, value], ...] pairs,
// enums as strings, and a "schema" tag identifies the layout. Parsing is
// strict — an unknown key anywhere throws std::invalid_argument naming
// it, so a typo in a hand-edited spec file cannot silently fall back to
// a default — and the parsed spec is validate()d before it is returned.
//
// serialise -> parse -> serialise is byte-identical (the golden-file
// guarantee spec_test relies on): numbers survive exactly through the
// shortest-round-trip double formatter. Seeds are stored as JSON numbers
// and therefore exact up to 2^53, far beyond any seed this repo uses.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "spec/experiment_spec.hpp"

namespace ehdse::spec {

/// Schema identifier written into every spec document. /3 added the
/// harvester section (registry-named backend).
inline constexpr const char* k_spec_schema = "ehdse.experiment_spec/3";

/// Still-accepted older layouts. A /2 (or /1) document never carries a
/// harvester section, and an absent section means the default
/// electromagnetic backend — exactly what those layouts hardwired — so
/// old dumped specs replay unchanged and canonicalise to the same v3
/// content (and cache keys) they always addressed. /1 additionally
/// predates the flow.design / flow.surrogate fields.
inline constexpr const char* k_spec_schema_v2 = "ehdse.experiment_spec/2";
inline constexpr const char* k_spec_schema_legacy = "ehdse.experiment_spec/1";

obs::json_value to_json(const scenario& s);
obs::json_value to_json(const harvester_spec& h);
obs::json_value to_json(const system_config& c);
obs::json_value to_json(const evaluation_options& e);
obs::json_value to_json(const flow_spec& f);
/// {"schema": ..., "scenario": ..., "harvester": ..., "config": ...,
///  "evaluation": ..., "flow": ...}
obs::json_value to_json(const experiment_spec& spec);

std::string to_string(fidelity model);
std::string to_string(frontend_kind kind);
fidelity fidelity_from_string(std::string_view name);
frontend_kind frontend_from_string(std::string_view name);

/// Decode a spec document. Throws std::invalid_argument on a schema
/// mismatch, an unknown key (named), a mistyped value, or a spec that
/// fails validate().
experiment_spec spec_from_json(const obs::json_value& doc);

/// Parse JSON text and decode it (obs::json_value::parse + spec_from_json).
experiment_spec parse_spec(std::string_view text);

}  // namespace ehdse::spec
