// The canonical experiment specification — ONE serialisable description
// of "a run" shared by every layer: the CLI builds one from flags or a
// JSON file, system_evaluator consumes its pieces, cached_evaluator keys
// on its content hash, run_rsm_flow echoes it into the run manifest. The
// paper's methodology is a pipeline of named experiments (DOE points,
// optimiser revisits, Table V/VI validation re-runs); this layer makes
// each of them a value that can be stored, replayed, and content-addressed.
//
// The five parts:
//   scenario            stimulus and initial conditions (paper section V)
//   harvester_spec      the harvester backend by registry name
//   system_config       the design point x1..x3 under optimisation
//   evaluation_options  fidelity / front-end / seeds of one simulation
//   flow_spec           the serialisable knobs of run_rsm_flow
//
// Every struct is an aggregate with defaulted exact equality, a
// validate() that throws std::invalid_argument naming the offending
// field, and a canonicalized() form that resets fields the run cannot
// observe (e.g. the stepped-profile knobs when an explicit frequency
// schedule is present) to their defaults, so equivalent requests compare
// and hash equal. JSON round-trip lives in spec/json_codec.hpp, the
// 64-bit content hash in spec/spec_hash.hpp.
//
// Runtime-only concerns — thread pools, manifests, progress callbacks,
// custom optimiser instances — are deliberately NOT here; they stay in
// dse::flow_options.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harvester/vibration.hpp"
#include "numeric/matrix.hpp"

namespace ehdse::spec {

/// Analogue fidelity of a run.
enum class fidelity {
    envelope,   ///< cycle-averaged fast path (default; ~75 ms per hour)
    transient,  ///< full nonlinear model, every vibration cycle resolved
                ///< (~5000x slower; validation runs)
};

/// Power-conditioning front-end between coil and store.
enum class frontend_kind {
    /// Passive diode bridge straight into the store (the paper's circuit).
    diode_bridge,
    /// Idealised maximum-power-point front-end: a switching converter that
    /// presents the coil's matched load and delivers the extracted power
    /// to the store at a fixed conversion efficiency.
    mppt,
};

/// Stimulus and initial conditions (paper section V: 60 mg, +5 Hz steps
/// every 25 minutes, one-hour horizon).
struct scenario {
    double duration_s = 3600.0;
    double accel_mg = 60.0;
    double f_start_hz = 64.0;
    double f_step_hz = 5.0;
    double step_period_s = 1500.0;  ///< 25 minutes
    std::size_t step_count = 2;     ///< 64 -> 69 -> 74 Hz within the hour
    double v_initial = 2.80;        ///< storage starts at the band edge
    /// Initial actuator position; -1 = tuned to f_start via the LUT.
    int initial_position = -1;

    /// Optional explicit frequency schedule [(time, Hz), ...] starting at
    /// t = 0. When non-empty it replaces the stepped profile above (and
    /// f_start for the initial-position lookup comes from its first entry).
    std::vector<std::pair<double, double>> frequency_schedule;

    /// Optional amplitude-scale schedule [(time, scale), ...] starting at
    /// t = 0; scale 0 = vibration source off (machine duty cycles).
    std::vector<std::pair<double, double>> amplitude_schedule;

    /// Build the vibration source this scenario describes.
    harvester::vibration_source make_vibration() const;

    /// Throws std::invalid_argument naming the offending field: duration
    /// and schedule entries must be positive / time-sorted (first entry at
    /// t = 0, matching harvester::vibration_source's contract).
    void validate() const;

    /// Copy with unobservable fields reset: when an explicit frequency
    /// schedule is present, the stepped-profile knobs (f_start_hz,
    /// f_step_hz, step_period_s, step_count) do not influence the run and
    /// return to their defaults.
    scenario canonicalized() const;

    bool operator==(const scenario&) const = default;
};

/// Which harvester backend the node simulates, by registry name
/// (harvester::make_harvester): electromagnetic (the paper's device,
/// default) or electrostatic (Galayko's charge-pump device). The physics
/// parameters stay with the device class — a spec names a calibrated
/// device, it does not re-parameterise one.
struct harvester_spec {
    std::string model = "electromagnetic";

    /// Throws std::invalid_argument naming the offending field when the
    /// name is not in the harvester registry.
    void validate() const;

    /// Every field is observable; canonicalisation is the identity.
    harvester_spec canonicalized() const { return *this; }

    bool operator==(const harvester_spec&) const = default;
};

/// One point of the design space in natural units (paper section III,
/// Table V).
struct system_config {
    double mcu_clock_hz = 4.0e6;      ///< x1: 125 kHz .. 8 MHz
    double watchdog_period_s = 320.0; ///< x2: 60 .. 600 s
    double tx_interval_s = 5.0;       ///< x3: 0.005 .. 10 s

    /// The paper's original (unoptimised) design: 4 MHz / 320 s / 5 s.
    static system_config original() { return {}; }

    /// Natural-units vector [clock, watchdog, interval].
    numeric::vec to_vector() const {
        return {mcu_clock_hz, watchdog_period_s, tx_interval_s};
    }

    static system_config from_vector(const numeric::vec& v);

    /// Throws std::invalid_argument naming the offending field.
    void validate() const;

    bool operator==(const system_config&) const = default;
};

/// Options controlling one evaluation.
struct evaluation_options {
    bool record_traces = false;
    double trace_interval_s = 1.0;
    std::uint64_t controller_seed = 0x5eed;  ///< measurement-noise stream
    fidelity model = fidelity::envelope;
    /// Power front-end (envelope fidelity only; the transient model always
    /// resolves the physical diode bridge).
    frontend_kind frontend = frontend_kind::diode_bridge;
    double frontend_efficiency = 0.75;  ///< mppt front-end only

    /// Throws std::invalid_argument naming the offending field.
    void validate() const;

    /// Copy with unobservable fields reset: trace_interval_s when traces
    /// are off; the front-end kind under transient fidelity (the physical
    /// bridge is always resolved); the efficiency whenever the mppt
    /// front-end is not in effect.
    evaluation_options canonicalized() const;

    bool operator==(const evaluation_options&) const = default;
};

/// The serialisable subset of dse::flow_options — everything that decides
/// WHAT run_rsm_flow computes. Pools, manifests, progress callbacks and
/// custom optimiser instances are runtime wiring and stay out.
struct flow_spec {
    std::size_t doe_runs = 10;        ///< design run budget (paper: 10)
    std::size_t factorial_levels = 3; ///< candidate grid per axis (paper: 3)
    /// Experimental design by registry name (doe::make_design):
    /// d_optimal (paper), full_factorial, central_composite, box_behnken,
    /// lhs. Families that ignore doe_runs / factorial_levels canonicalise
    /// those knobs away.
    std::string design = "d_optimal";
    /// Surrogate model by registry name (rsm::make_surrogate): quadratic
    /// (paper eq. 9), stepwise, gp.
    std::string surrogate = "quadratic";
    std::uint64_t optimizer_seed = 0x0b7a1;
    std::size_t replicates = 1;
    std::uint64_t replicate_seed_base = 1;
    bool parallel = false;
    std::size_t jobs = 0;             ///< 0 = one worker per hardware thread
    bool cache = true;
    std::size_t cache_capacity = 128;
    /// Optimisers by registry name (opt::make_optimizer); empty = the
    /// paper's pair (simulated-annealing + genetic-algorithm).
    std::vector<std::string> optimizers;

    /// Throws std::invalid_argument naming the offending field.
    void validate() const;

    /// Copy with unobservable fields reset: jobs when not parallel,
    /// cache_capacity when the cache is off, replicate_seed_base when
    /// nothing is replicated, doe_runs / factorial_levels when the chosen
    /// design family does not read them.
    flow_spec canonicalized() const;

    bool operator==(const flow_spec&) const = default;
};

/// The complete, replayable description of one experiment. `config` is
/// the design point a `simulate` request evaluates and the baseline row
/// of a `flow` request's Table VI.
struct experiment_spec {
    scenario scn;
    harvester_spec harv;
    system_config config;
    evaluation_options eval;
    flow_spec flow;

    /// Validates every part (std::invalid_argument, field named).
    void validate() const;

    /// Canonical form: every part canonicalized. Two specs describing the
    /// same observable experiment compare equal — and therefore hash
    /// equal — after this.
    experiment_spec canonicalized() const;

    bool operator==(const experiment_spec&) const = default;
};

}  // namespace ehdse::spec
