#include "spec/json_codec.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <stdexcept>
#include <utility>

namespace ehdse::spec {

namespace {

[[noreturn]] void fail(const std::string& message) {
    throw std::invalid_argument("experiment_spec: " + message);
}

/// Seeds are full uint64 values but JSON numbers are double-backed, exact
/// only up to 2^53; larger seeds are encoded as hex strings so every seed
/// round-trips bit-exactly. The choice depends only on the value, keeping
/// serialisation canonical.
obs::json_value seed_to_json(std::uint64_t v) {
    constexpr std::uint64_t k_exact_limit = 1ULL << 53;
    if (v <= k_exact_limit) return obs::json_value(v);
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
    return obs::json_value(std::string(buf));
}

obs::json_value schedule_to_json(
    const std::vector<std::pair<double, double>>& schedule) {
    obs::json_array rows;
    rows.reserve(schedule.size());
    for (const auto& [t, v] : schedule)
        rows.push_back(obs::json_array{obs::json_value(t), obs::json_value(v)});
    return rows;
}

/// Strict object reader: every member must be consumed exactly once and
/// every key must be known; `where` prefixes error messages ("scenario").
class object_reader {
public:
    object_reader(const obs::json_value& value, std::string where)
        : where_(std::move(where)) {
        if (!value.is_object()) fail(where_ + " must be a JSON object");
        object_ = &value.as_object();
    }

    double number(const char* key, double fallback) const {
        const obs::json_value* v = find(key);
        if (!v) return fallback;
        if (!v->is_number()) fail(path(key) + " must be a number");
        return v->as_number();
    }

    std::size_t size(const char* key, std::size_t fallback) const {
        const double v = number(key, static_cast<double>(fallback));
        if (v < 0.0 || v != std::floor(v))
            fail(path(key) + " must be a non-negative integer");
        return static_cast<std::size_t>(v);
    }

    std::uint64_t seed(const char* key, std::uint64_t fallback) const {
        const obs::json_value* v = find(key);
        if (!v) return fallback;
        // Seeds above 2^53 cannot survive the double-backed JSON number
        // representation, so they are written (and accepted) as "0x..."
        // strings; plain numbers remain valid for the common small case.
        if (v->is_string()) {
            const std::string& s = v->as_string();
            errno = 0;
            char* end = nullptr;
            const unsigned long long parsed = std::strtoull(s.c_str(), &end, 0);
            if (s.empty() || errno != 0 || end != s.c_str() + s.size())
                fail(path(key) + " must be a non-negative integer or \"0x...\" string");
            return static_cast<std::uint64_t>(parsed);
        }
        if (!v->is_number()) fail(path(key) + " must be a number or string");
        const double d = v->as_number();
        if (d < 0.0 || d != std::floor(d))
            fail(path(key) + " must be a non-negative integer");
        return static_cast<std::uint64_t>(d);
    }

    int integer(const char* key, int fallback) const {
        const double v = number(key, fallback);
        if (v != std::floor(v)) fail(path(key) + " must be an integer");
        return static_cast<int>(v);
    }

    bool boolean(const char* key, bool fallback) const {
        const obs::json_value* v = find(key);
        if (!v) return fallback;
        if (!v->is_bool()) fail(path(key) + " must be a boolean");
        return v->as_bool();
    }

    std::string string(const char* key, std::string fallback) const {
        const obs::json_value* v = find(key);
        if (!v) return fallback;
        if (!v->is_string()) fail(path(key) + " must be a string");
        return v->as_string();
    }

    std::vector<std::pair<double, double>> schedule(const char* key) const {
        std::vector<std::pair<double, double>> out;
        const obs::json_value* v = find(key);
        if (!v) return out;
        if (!v->is_array()) fail(path(key) + " must be an array of [t, v] pairs");
        for (std::size_t i = 0; i < v->size(); ++i) {
            const obs::json_value& row = v->at(i);
            if (!row.is_array() || row.size() != 2 || !row.at(0).is_number() ||
                !row.at(1).is_number())
                fail(path(key) + "[" + std::to_string(i) +
                     "] must be a [number, number] pair");
            out.emplace_back(row.at(0).as_number(), row.at(1).as_number());
        }
        return out;
    }

    std::vector<std::string> strings(const char* key) const {
        std::vector<std::string> out;
        const obs::json_value* v = find(key);
        if (!v) return out;
        if (!v->is_array()) fail(path(key) + " must be an array of strings");
        for (std::size_t i = 0; i < v->size(); ++i) {
            if (!v->at(i).is_string())
                fail(path(key) + "[" + std::to_string(i) + "] must be a string");
            out.push_back(v->at(i).as_string());
        }
        return out;
    }

    const obs::json_value* object(const char* key) const { return find(key); }

    /// Call after reading every expected key: rejects any member that was
    /// never requested, naming the first offender.
    void reject_unknown_keys() const {
        for (const auto& [key, value] : *object_) {
            bool seen = false;
            for (const std::string& k : consumed_)
                if (k == key) { seen = true; break; }
            if (!seen) fail("unknown key '" + path(key.c_str()) + "'");
        }
    }

private:
    const obs::json_value* find(const char* key) const {
        consumed_.emplace_back(key);
        for (const auto& [k, v] : *object_)
            if (k == key) return &v;
        return nullptr;
    }

    std::string path(const char* key) const {
        return where_.empty() ? std::string(key) : where_ + "." + key;
    }

    const obs::json_object* object_;
    std::string where_;
    mutable std::vector<std::string> consumed_;
};

scenario scenario_from_json(const obs::json_value& value) {
    const object_reader r(value, "scenario");
    scenario s;
    s.duration_s = r.number("duration_s", s.duration_s);
    s.accel_mg = r.number("accel_mg", s.accel_mg);
    s.f_start_hz = r.number("f_start_hz", s.f_start_hz);
    s.f_step_hz = r.number("f_step_hz", s.f_step_hz);
    s.step_period_s = r.number("step_period_s", s.step_period_s);
    s.step_count = r.size("step_count", s.step_count);
    s.v_initial = r.number("v_initial", s.v_initial);
    s.initial_position = r.integer("initial_position", s.initial_position);
    s.frequency_schedule = r.schedule("frequency_schedule");
    s.amplitude_schedule = r.schedule("amplitude_schedule");
    r.reject_unknown_keys();
    return s;
}

harvester_spec harvester_from_json(const obs::json_value& value) {
    const object_reader r(value, "harvester");
    harvester_spec h;
    h.model = r.string("model", h.model);
    r.reject_unknown_keys();
    return h;
}

system_config config_from_json(const obs::json_value& value) {
    const object_reader r(value, "config");
    system_config c;
    c.mcu_clock_hz = r.number("mcu_clock_hz", c.mcu_clock_hz);
    c.watchdog_period_s = r.number("watchdog_period_s", c.watchdog_period_s);
    c.tx_interval_s = r.number("tx_interval_s", c.tx_interval_s);
    r.reject_unknown_keys();
    return c;
}

evaluation_options evaluation_from_json(const obs::json_value& value) {
    const object_reader r(value, "evaluation");
    evaluation_options e;
    e.record_traces = r.boolean("record_traces", e.record_traces);
    e.trace_interval_s = r.number("trace_interval_s", e.trace_interval_s);
    e.controller_seed = r.seed("controller_seed", e.controller_seed);
    e.model = fidelity_from_string(r.string("fidelity", to_string(e.model)));
    e.frontend = frontend_from_string(r.string("frontend", to_string(e.frontend)));
    e.frontend_efficiency = r.number("frontend_efficiency", e.frontend_efficiency);
    r.reject_unknown_keys();
    return e;
}

flow_spec flow_from_json(const obs::json_value& value) {
    const object_reader r(value, "flow");
    flow_spec f;
    f.doe_runs = r.size("doe_runs", f.doe_runs);
    f.factorial_levels = r.size("factorial_levels", f.factorial_levels);
    f.design = r.string("design", f.design);
    f.surrogate = r.string("surrogate", f.surrogate);
    f.optimizer_seed = r.seed("optimizer_seed", f.optimizer_seed);
    f.replicates = r.size("replicates", f.replicates);
    f.replicate_seed_base = r.seed("replicate_seed_base", f.replicate_seed_base);
    f.parallel = r.boolean("parallel", f.parallel);
    f.jobs = r.size("jobs", f.jobs);
    f.cache = r.boolean("cache", f.cache);
    f.cache_capacity = r.size("cache_capacity", f.cache_capacity);
    f.optimizers = r.strings("optimizers");
    r.reject_unknown_keys();
    return f;
}

}  // namespace

obs::json_value to_json(const scenario& s) {
    obs::json_value out{obs::json_object{}};
    out.set("duration_s", s.duration_s);
    out.set("accel_mg", s.accel_mg);
    out.set("f_start_hz", s.f_start_hz);
    out.set("f_step_hz", s.f_step_hz);
    out.set("step_period_s", s.step_period_s);
    out.set("step_count", s.step_count);
    out.set("v_initial", s.v_initial);
    out.set("initial_position", s.initial_position);
    out.set("frequency_schedule", schedule_to_json(s.frequency_schedule));
    out.set("amplitude_schedule", schedule_to_json(s.amplitude_schedule));
    return out;
}

obs::json_value to_json(const harvester_spec& h) {
    obs::json_value out{obs::json_object{}};
    out.set("model", h.model);
    return out;
}

obs::json_value to_json(const system_config& c) {
    obs::json_value out{obs::json_object{}};
    out.set("mcu_clock_hz", c.mcu_clock_hz);
    out.set("watchdog_period_s", c.watchdog_period_s);
    out.set("tx_interval_s", c.tx_interval_s);
    return out;
}

obs::json_value to_json(const evaluation_options& e) {
    obs::json_value out{obs::json_object{}};
    out.set("record_traces", e.record_traces);
    out.set("trace_interval_s", e.trace_interval_s);
    out.set("controller_seed", seed_to_json(e.controller_seed));
    out.set("fidelity", to_string(e.model));
    out.set("frontend", to_string(e.frontend));
    out.set("frontend_efficiency", e.frontend_efficiency);
    return out;
}

obs::json_value to_json(const flow_spec& f) {
    obs::json_value out{obs::json_object{}};
    out.set("doe_runs", f.doe_runs);
    out.set("factorial_levels", f.factorial_levels);
    out.set("design", f.design);
    out.set("surrogate", f.surrogate);
    out.set("optimizer_seed", seed_to_json(f.optimizer_seed));
    out.set("replicates", f.replicates);
    out.set("replicate_seed_base", seed_to_json(f.replicate_seed_base));
    out.set("parallel", f.parallel);
    out.set("jobs", f.jobs);
    out.set("cache", f.cache);
    out.set("cache_capacity", f.cache_capacity);
    obs::json_array names;
    for (const std::string& name : f.optimizers) names.push_back(name);
    out.set("optimizers", std::move(names));
    return out;
}

obs::json_value to_json(const experiment_spec& spec) {
    obs::json_value out{obs::json_object{}};
    out.set("schema", k_spec_schema);
    out.set("scenario", to_json(spec.scn));
    out.set("harvester", to_json(spec.harv));
    out.set("config", to_json(spec.config));
    out.set("evaluation", to_json(spec.eval));
    out.set("flow", to_json(spec.flow));
    return out;
}

std::string to_string(fidelity model) {
    return model == fidelity::transient ? "transient" : "envelope";
}

std::string to_string(frontend_kind kind) {
    return kind == frontend_kind::mppt ? "mppt" : "diode_bridge";
}

fidelity fidelity_from_string(std::string_view name) {
    if (name == "envelope") return fidelity::envelope;
    if (name == "transient") return fidelity::transient;
    fail("fidelity must be 'envelope' or 'transient', got '" +
         std::string(name) + "'");
}

frontend_kind frontend_from_string(std::string_view name) {
    if (name == "diode_bridge") return frontend_kind::diode_bridge;
    if (name == "mppt") return frontend_kind::mppt;
    fail("frontend must be 'diode_bridge' or 'mppt', got '" +
         std::string(name) + "'");
}

experiment_spec spec_from_json(const obs::json_value& doc) {
    const object_reader r(doc, "");
    const std::string schema = r.string("schema", k_spec_schema);
    if (schema != k_spec_schema && schema != k_spec_schema_v2 &&
        schema != k_spec_schema_legacy)
        fail("unsupported schema '" + schema + "' (expected '" +
             k_spec_schema + "')");
    experiment_spec spec;
    if (const obs::json_value* v = r.object("scenario"))
        spec.scn = scenario_from_json(*v);
    if (const obs::json_value* v = r.object("harvester"))
        spec.harv = harvester_from_json(*v);
    if (const obs::json_value* v = r.object("config"))
        spec.config = config_from_json(*v);
    if (const obs::json_value* v = r.object("evaluation"))
        spec.eval = evaluation_from_json(*v);
    if (const obs::json_value* v = r.object("flow"))
        spec.flow = flow_from_json(*v);
    r.reject_unknown_keys();
    spec.validate();
    return spec;
}

experiment_spec parse_spec(std::string_view text) {
    return spec_from_json(obs::json_value::parse(text));
}

}  // namespace ehdse::spec
