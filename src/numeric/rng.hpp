// Deterministic pseudo-random number generation for the stochastic parts of
// ehdse (D-optimal start designs, simulated annealing, genetic algorithm,
// property-test sweeps).
//
// A self-contained xoshiro256++ engine is used instead of std::mt19937 so
// that (a) streams are cheap to split per-component and (b) results are
// reproducible across standard-library implementations — important because
// EXPERIMENTS.md records concrete seeds.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ehdse::numeric {

/// xoshiro256++ PRNG (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class rng {
public:
    using result_type = std::uint64_t;

    /// Seed via splitmix64 expansion of a single 64-bit value.
    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~std::uint64_t{0}; }

    result_type operator()() noexcept { return next(); }

    std::uint64_t next() noexcept;

    /// Derive an independent stream (equivalent to 2^128 calls of next()).
    rng split() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n); n must be > 0.
    std::size_t uniform_index(std::size_t n) noexcept;

    /// Standard normal variate (Box–Muller, cached pair).
    double normal() noexcept;

    /// Normal variate with the given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;

    /// True with probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Random permutation of {0, 1, ..., n-1} (Fisher–Yates).
    std::vector<std::size_t> permutation(std::size_t n);

private:
    void jump() noexcept;

    std::array<std::uint64_t, 4> s_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace ehdse::numeric
