// Special functions backing the regression statistics: regularised
// incomplete beta, and the Student-t / Fisher F distribution functions
// built on it. Implementations follow the classic Lentz continued-fraction
// evaluation (Numerical Recipes style), accurate to ~1e-12 over the ranges
// regression diagnostics use.
#pragma once

namespace ehdse::numeric {

/// Regularised incomplete beta function I_x(a, b) for a,b > 0, x in [0,1].
double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with nu > 0 degrees of freedom.
double student_t_cdf(double t, double nu);

/// Two-sided p-value for a t statistic with nu degrees of freedom:
/// P(|T| >= |t|).
double student_t_two_sided_p(double t, double nu);

/// CDF of the F distribution with (d1, d2) degrees of freedom, f >= 0.
double f_cdf(double f, double d1, double d2);

/// Upper tail P(F >= f) — the ANOVA p-value.
double f_upper_p(double f, double d1, double d2);

}  // namespace ehdse::numeric
