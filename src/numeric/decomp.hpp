// Matrix decompositions: LU with partial pivoting and Householder QR.
//
// These back three distinct consumers:
//   * linear solves inside the simulation kernel (implicit integrator steps),
//   * determinant evaluation for the D-optimality criterion det(X'X),
//   * least-squares fitting of the response-surface polynomial.
#pragma once

#include <optional>

#include "numeric/matrix.hpp"

namespace ehdse::numeric {

/// LU factorisation with partial (row) pivoting: P*A = L*U.
///
/// `singular()` reports whether a zero (or numerically negligible) pivot
/// was met; solves against a singular factorisation throw.
class lu_decomposition {
public:
    /// Factorise a square matrix. Throws std::invalid_argument if not square.
    explicit lu_decomposition(const matrix& a);

    bool singular() const noexcept { return singular_; }

    /// Determinant of A (0 when singular).
    double determinant() const;

    /// log|det(A)| and its sign; more robust for large/ill-scaled matrices.
    /// Returns {log_abs_det, sign} where sign in {-1, 0, +1}.
    std::pair<double, int> log_abs_determinant() const;

    /// Solve A x = b. Throws std::domain_error when singular.
    vec solve(const vec& b) const;

    /// Solve A X = B column-by-column.
    matrix solve(const matrix& b) const;

    /// Inverse of A. Throws std::domain_error when singular.
    matrix inverse() const;

private:
    matrix lu_;                    // packed L (unit diagonal, below) and U (on/above)
    std::vector<std::size_t> piv_; // row permutation
    int pivot_sign_ = 1;
    bool singular_ = false;
};

/// Householder QR factorisation A = Q*R for rows >= cols.
///
/// Used for least squares: min ||A x - b|| is solved by R x = (Q' b)[0..p).
class qr_decomposition {
public:
    /// Factorise. Throws std::invalid_argument when rows < cols.
    explicit qr_decomposition(const matrix& a);

    /// True when R has a (numerically) zero diagonal entry, i.e. A is
    /// rank-deficient and the least-squares solution is not unique.
    bool rank_deficient() const noexcept { return rank_deficient_; }

    /// Least-squares solution of A x ≈ b. Throws std::domain_error when
    /// rank-deficient, std::invalid_argument when b.size() != rows.
    vec solve(const vec& b) const;

    /// Upper-triangular factor R (cols x cols).
    matrix r() const;

    /// |det(R)| = sqrt(det(A'A)); useful for D-optimality without forming
    /// the Gram matrix explicitly.
    double abs_det_r() const;

private:
    matrix qr_;        // Householder vectors below diagonal, R on/above
    vec r_diag_;       // diagonal of R
    bool rank_deficient_ = false;
};

/// Cholesky factorisation A = L L' of a symmetric positive-definite matrix.
///
/// Backs the Gaussian-process surrogate (kernel matrices) and any other
/// SPD solve; roughly twice as fast as LU and fails loudly on non-SPD
/// input, which doubles as a positive-definiteness check.
class cholesky_decomposition {
public:
    /// Factorise. Only the lower triangle of `a` is read.
    /// Throws std::invalid_argument when not square.
    explicit cholesky_decomposition(const matrix& a);

    /// False when a non-positive pivot was met (matrix not SPD); solves
    /// against a failed factorisation throw std::domain_error.
    bool positive_definite() const noexcept { return spd_; }

    /// Solve A x = b.
    vec solve(const vec& b) const;

    /// log det(A) = 2 sum log L_ii.
    double log_determinant() const;

    /// The lower-triangular factor L.
    const matrix& l() const noexcept { return l_; }

private:
    matrix l_;
    bool spd_ = true;
};

/// Solve the square system A x = b via LU. Convenience wrapper.
vec solve_linear(const matrix& a, const vec& b);

/// Determinant via LU. Convenience wrapper.
double determinant(const matrix& a);

/// Inverse via LU. Convenience wrapper; throws std::domain_error if singular.
matrix inverse(const matrix& a);

/// Least-squares solution of (possibly overdetermined) A x ≈ b via QR.
vec solve_least_squares(const matrix& a, const vec& b);

}  // namespace ehdse::numeric
