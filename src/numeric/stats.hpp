// Descriptive statistics helpers shared by the RSM diagnostics
// (R², adjusted R², PRESS) and the benchmark reporting code.
#pragma once

#include <cstddef>
#include <span>

#include "numeric/matrix.hpp"

namespace ehdse::numeric {

/// Arithmetic mean; returns 0 for an empty range.
double mean(std::span<const double> xs);

/// Population variance (divides by n); returns 0 for fewer than 1 element.
double variance(std::span<const double> xs);

/// Sample variance (divides by n-1); returns 0 for fewer than 2 elements.
double sample_variance(std::span<const double> xs);

/// Sample standard deviation.
double sample_stddev(std::span<const double> xs);

/// Total sum of squares about the mean: sum (x - mean)^2.
double total_sum_squares(std::span<const double> xs);

/// Residual sum of squares between observed and fitted values.
double residual_sum_squares(std::span<const double> observed,
                            std::span<const double> fitted);

/// Coefficient of determination R^2 = 1 - SSE / SST.
/// Returns 1 when SST == 0 and SSE == 0, otherwise 0 when SST == 0.
double r_squared(std::span<const double> observed,
                 std::span<const double> fitted);

/// Adjusted R^2 for a model with p coefficients over n observations.
double adjusted_r_squared(std::span<const double> observed,
                          std::span<const double> fitted,
                          std::size_t coefficient_count);

/// Root-mean-square error between observed and fitted.
double rmse(std::span<const double> observed, std::span<const double> fitted);

/// Maximum absolute error between observed and fitted.
double max_abs_error(std::span<const double> observed,
                     std::span<const double> fitted);

/// Pearson correlation coefficient; returns 0 when either variance is 0.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// q-quantile (0 <= q <= 1) via linear interpolation of sorted copy.
double quantile(std::span<const double> xs, double q);

/// Min and max of a non-empty range.
std::pair<double, double> min_max(std::span<const double> xs);

}  // namespace ehdse::numeric
