#include "numeric/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ehdse::numeric {

namespace {
constexpr double k_pivot_eps = 1e-13;
}

lu_decomposition::lu_decomposition(const matrix& a) : lu_(a), piv_(a.rows()) {
    if (a.rows() != a.cols())
        throw std::invalid_argument("lu_decomposition requires a square matrix");
    const std::size_t n = a.rows();
    for (std::size_t i = 0; i < n; ++i) piv_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: find the largest |entry| in column k at/below row k.
        std::size_t p = k;
        double best = std::abs(lu_.at_unchecked(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double v = std::abs(lu_.at_unchecked(i, k));
            if (v > best) { best = v; p = i; }
        }
        if (p != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(lu_.at_unchecked(p, c), lu_.at_unchecked(k, c));
            std::swap(piv_[p], piv_[k]);
            pivot_sign_ = -pivot_sign_;
        }
        const double pivot = lu_.at_unchecked(k, k);
        if (std::abs(pivot) < k_pivot_eps) {
            singular_ = true;
            continue;
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            const double m = lu_.at_unchecked(i, k) / pivot;
            lu_.at_unchecked(i, k) = m;
            if (m == 0.0) continue;
            for (std::size_t c = k + 1; c < n; ++c)
                lu_.at_unchecked(i, c) -= m * lu_.at_unchecked(k, c);
        }
    }
}

double lu_decomposition::determinant() const {
    if (singular_) return 0.0;
    double det = pivot_sign_;
    for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_.at_unchecked(i, i);
    return det;
}

std::pair<double, int> lu_decomposition::log_abs_determinant() const {
    if (singular_) return {-std::numeric_limits<double>::infinity(), 0};
    double log_abs = 0.0;
    int sign = pivot_sign_;
    for (std::size_t i = 0; i < lu_.rows(); ++i) {
        const double d = lu_.at_unchecked(i, i);
        log_abs += std::log(std::abs(d));
        if (d < 0.0) sign = -sign;
    }
    return {log_abs, sign};
}

vec lu_decomposition::solve(const vec& b) const {
    if (singular_) throw std::domain_error("lu_decomposition::solve: singular matrix");
    const std::size_t n = lu_.rows();
    if (b.size() != n) throw std::invalid_argument("lu solve: rhs size mismatch");
    vec x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[piv_[i]];
    // Forward substitution (L has unit diagonal).
    for (std::size_t i = 1; i < n; ++i) {
        double acc = x[i];
        for (std::size_t j = 0; j < i; ++j) acc -= lu_.at_unchecked(i, j) * x[j];
        x[i] = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = x[ii];
        for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_.at_unchecked(ii, j) * x[j];
        x[ii] = acc / lu_.at_unchecked(ii, ii);
    }
    return x;
}

matrix lu_decomposition::solve(const matrix& b) const {
    if (b.rows() != lu_.rows())
        throw std::invalid_argument("lu solve: rhs row count mismatch");
    matrix x(b.rows(), b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c) {
        const vec xc = solve(b.col(c));
        for (std::size_t r = 0; r < b.rows(); ++r) x.at_unchecked(r, c) = xc[r];
    }
    return x;
}

matrix lu_decomposition::inverse() const {
    return solve(matrix::identity(lu_.rows()));
}

qr_decomposition::qr_decomposition(const matrix& a)
    : qr_(a), r_diag_(a.cols(), 0.0) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n)
        throw std::invalid_argument("qr_decomposition requires rows >= cols");

    for (std::size_t k = 0; k < n; ++k) {
        // Householder reflection zeroing column k below the diagonal.
        double nrm = 0.0;
        for (std::size_t i = k; i < m; ++i) {
            const double v = qr_.at_unchecked(i, k);
            nrm = std::hypot(nrm, v);
        }
        if (nrm == 0.0) {
            r_diag_[k] = 0.0;
            rank_deficient_ = true;
            continue;
        }
        if (qr_.at_unchecked(k, k) < 0.0) nrm = -nrm;
        for (std::size_t i = k; i < m; ++i) qr_.at_unchecked(i, k) /= nrm;
        qr_.at_unchecked(k, k) += 1.0;

        for (std::size_t j = k + 1; j < n; ++j) {
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i)
                s += qr_.at_unchecked(i, k) * qr_.at_unchecked(i, j);
            s = -s / qr_.at_unchecked(k, k);
            for (std::size_t i = k; i < m; ++i)
                qr_.at_unchecked(i, j) += s * qr_.at_unchecked(i, k);
        }
        r_diag_[k] = -nrm;
    }
    for (double d : r_diag_)
        if (std::abs(d) < k_pivot_eps) rank_deficient_ = true;
}

vec qr_decomposition::solve(const vec& b) const {
    const std::size_t m = qr_.rows();
    const std::size_t n = qr_.cols();
    if (b.size() != m) throw std::invalid_argument("qr solve: rhs size mismatch");
    if (rank_deficient_)
        throw std::domain_error("qr_decomposition::solve: rank-deficient system");

    vec y = b;
    // Apply Q' to b.
    for (std::size_t k = 0; k < n; ++k) {
        double s = 0.0;
        for (std::size_t i = k; i < m; ++i) s += qr_.at_unchecked(i, k) * y[i];
        s = -s / qr_.at_unchecked(k, k);
        for (std::size_t i = k; i < m; ++i) y[i] += s * qr_.at_unchecked(i, k);
    }
    // Back-substitute R x = y[0..n).
    vec x(n);
    for (std::size_t kk = n; kk-- > 0;) {
        double acc = y[kk];
        for (std::size_t j = kk + 1; j < n; ++j) acc -= qr_.at_unchecked(kk, j) * x[j];
        x[kk] = acc / r_diag_[kk];
    }
    return x;
}

matrix qr_decomposition::r() const {
    const std::size_t n = qr_.cols();
    matrix r(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        r.at_unchecked(i, i) = r_diag_[i];
        for (std::size_t j = i + 1; j < n; ++j)
            r.at_unchecked(i, j) = qr_.at_unchecked(i, j);
    }
    return r;
}

double qr_decomposition::abs_det_r() const {
    double d = 1.0;
    for (double x : r_diag_) d *= std::abs(x);
    return d;
}

cholesky_decomposition::cholesky_decomposition(const matrix& a)
    : l_(a.rows(), a.cols(), 0.0) {
    if (a.rows() != a.cols())
        throw std::invalid_argument("cholesky_decomposition requires a square matrix");
    const std::size_t n = a.rows();
    for (std::size_t j = 0; j < n && spd_; ++j) {
        double diag = a.at_unchecked(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= l_.at_unchecked(j, k) * l_.at_unchecked(j, k);
        if (diag <= 0.0) {
            spd_ = false;
            break;
        }
        const double ljj = std::sqrt(diag);
        l_.at_unchecked(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double acc = a.at_unchecked(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= l_.at_unchecked(i, k) * l_.at_unchecked(j, k);
            l_.at_unchecked(i, j) = acc / ljj;
        }
    }
}

vec cholesky_decomposition::solve(const vec& b) const {
    if (!spd_)
        throw std::domain_error("cholesky_decomposition::solve: matrix not SPD");
    const std::size_t n = l_.rows();
    if (b.size() != n)
        throw std::invalid_argument("cholesky solve: rhs size mismatch");
    vec y(n);
    // Forward: L y = b.
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l_.at_unchecked(i, k) * y[k];
        y[i] = acc / l_.at_unchecked(i, i);
    }
    // Backward: L' x = y.
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            acc -= l_.at_unchecked(k, ii) * y[k];
        y[ii] = acc / l_.at_unchecked(ii, ii);
    }
    return y;
}

double cholesky_decomposition::log_determinant() const {
    if (!spd_)
        throw std::domain_error("cholesky_decomposition: matrix not SPD");
    double acc = 0.0;
    for (std::size_t i = 0; i < l_.rows(); ++i)
        acc += std::log(l_.at_unchecked(i, i));
    return 2.0 * acc;
}

vec solve_linear(const matrix& a, const vec& b) {
    return lu_decomposition(a).solve(b);
}

double determinant(const matrix& a) {
    return lu_decomposition(a).determinant();
}

matrix inverse(const matrix& a) {
    return lu_decomposition(a).inverse();
}

vec solve_least_squares(const matrix& a, const vec& b) {
    return qr_decomposition(a).solve(b);
}

}  // namespace ehdse::numeric
