// Dense row-major matrix and vector primitives used throughout ehdse.
//
// The numeric substrate is deliberately dependency-free: the RSM fit,
// D-optimal exchange and the simulation kernel all need small dense
// linear algebra (tens of rows/columns), so a simple, well-tested,
// cache-friendly row-major implementation is preferable to pulling in a
// large external library.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ehdse::numeric {

/// Dense dynamically-sized vector of doubles.
using vec = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Supports the operations needed by the regression / DOE / simulation
/// code: element access, slicing of rows, products, transpose and
/// elementwise arithmetic. Sizes are validated; mismatches throw
/// std::invalid_argument so model-building bugs fail loudly.
class matrix {
public:
    matrix() = default;

    /// Create a rows x cols matrix initialised to `fill`.
    matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    /// Create from a nested initializer list; all rows must have equal length.
    matrix(std::initializer_list<std::initializer_list<double>> init);

    /// Identity matrix of size n.
    static matrix identity(std::size_t n);

    /// Matrix with the given vector on the diagonal.
    static matrix diagonal(const vec& d);

    /// Build from rows (each inner vector is one row; all equal length).
    static matrix from_rows(const std::vector<vec>& rows);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    bool empty() const noexcept { return data_.empty(); }

    double& operator()(std::size_t r, std::size_t c) {
        check_index(r, c);
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const {
        check_index(r, c);
        return data_[r * cols_ + c];
    }

    /// Unchecked access for hot loops.
    double& at_unchecked(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    double at_unchecked(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    /// View of row r as a contiguous span.
    std::span<double> row(std::size_t r);
    std::span<const double> row(std::size_t r) const;

    /// Copy of column c.
    vec col(std::size_t c) const;

    /// Replace row r with the contents of `values` (size must equal cols()).
    void set_row(std::size_t r, std::span<const double> values);

    /// Append a row (matrix must be empty or have cols()==values.size()).
    void append_row(std::span<const double> values);

    /// Remove row r, shifting later rows up.
    void remove_row(std::size_t r);

    matrix transposed() const;

    /// this * other  (dimensions must agree).
    matrix operator*(const matrix& other) const;

    /// this * v  (v.size() must equal cols()).
    vec operator*(const vec& v) const;

    matrix operator+(const matrix& other) const;
    matrix operator-(const matrix& other) const;
    matrix& operator+=(const matrix& other);
    matrix& operator-=(const matrix& other);
    matrix operator*(double s) const;
    matrix& operator*=(double s);

    /// Gram matrix X' * X — the "information matrix" of D-optimal design.
    matrix gram() const;

    /// Frobenius norm.
    double frobenius_norm() const;

    /// Maximum absolute element difference against `other` (sizes must match).
    double max_abs_diff(const matrix& other) const;

    /// Raw storage (row-major), useful for serialisation and tests.
    const std::vector<double>& data() const noexcept { return data_; }

    /// Human-readable rendering, mainly for diagnostics and test failure text.
    std::string to_string(int precision = 6) const;

private:
    void check_index(std::size_t r, std::size_t c) const {
        if (r >= rows_ || c >= cols_)
            throw std::out_of_range("matrix index (" + std::to_string(r) + "," +
                                    std::to_string(c) + ") out of range for " +
                                    std::to_string(rows_) + "x" + std::to_string(cols_));
    }
    void check_same_shape(const matrix& other) const;

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Dot product; sizes must agree.
double dot(const vec& a, const vec& b);

/// Euclidean norm.
double norm(const vec& v);

/// a + b elementwise.
vec add(const vec& a, const vec& b);

/// a - b elementwise.
vec sub(const vec& a, const vec& b);

/// s * v.
vec scale(const vec& v, double s);

/// a + s*b (axpy); sizes must agree.
vec axpy(const vec& a, double s, const vec& b);

/// Maximum absolute element.
double max_abs(const vec& v);

}  // namespace ehdse::numeric
