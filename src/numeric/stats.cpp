#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ehdse::numeric {

namespace {
void check_same_size(std::span<const double> a, std::span<const double> b,
                     const char* what) {
    if (a.size() != b.size()) throw std::invalid_argument(std::string(what) + ": size mismatch");
}
}  // namespace

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double sample_stddev(std::span<const double> xs) {
    return std::sqrt(sample_variance(xs));
}

double total_sum_squares(std::span<const double> xs) {
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) acc += (x - m) * (x - m);
    return acc;
}

double residual_sum_squares(std::span<const double> observed,
                            std::span<const double> fitted) {
    check_same_size(observed, fitted, "residual_sum_squares");
    double acc = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        const double e = observed[i] - fitted[i];
        acc += e * e;
    }
    return acc;
}

double r_squared(std::span<const double> observed,
                 std::span<const double> fitted) {
    const double sst = total_sum_squares(observed);
    const double sse = residual_sum_squares(observed, fitted);
    if (sst == 0.0) return sse == 0.0 ? 1.0 : 0.0;
    return 1.0 - sse / sst;
}

double adjusted_r_squared(std::span<const double> observed,
                          std::span<const double> fitted,
                          std::size_t coefficient_count) {
    const auto n = static_cast<double>(observed.size());
    const auto p = static_cast<double>(coefficient_count);
    if (n - p <= 0.0) return r_squared(observed, fitted);
    const double r2 = r_squared(observed, fitted);
    return 1.0 - (1.0 - r2) * (n - 1.0) / (n - p);
}

double rmse(std::span<const double> observed, std::span<const double> fitted) {
    if (observed.empty()) return 0.0;
    return std::sqrt(residual_sum_squares(observed, fitted) /
                     static_cast<double>(observed.size()));
}

double max_abs_error(std::span<const double> observed,
                     std::span<const double> fitted) {
    check_same_size(observed, fitted, "max_abs_error");
    double m = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i)
        m = std::max(m, std::abs(observed[i] - fitted[i]));
    return m;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
    check_same_size(xs, ys, "pearson");
    if (xs.size() < 2) return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) throw std::invalid_argument("quantile: empty range");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::pair<double, double> min_max(std::span<const double> xs) {
    if (xs.empty()) throw std::invalid_argument("min_max: empty range");
    auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
    return {*lo, *hi};
}

}  // namespace ehdse::numeric
