#include "numeric/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ehdse::numeric {

namespace {

/// Continued fraction for the incomplete beta (modified Lentz algorithm).
double beta_cf(double a, double b, double x) {
    constexpr int max_iter = 300;
    constexpr double eps = 3e-14;
    constexpr double fpmin = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::abs(d) < fpmin) d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iter; ++m) {
        const double m2 = 2.0 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < fpmin) d = fpmin;
        c = 1.0 + aa / c;
        if (std::abs(c) < fpmin) c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::abs(d) < fpmin) d = fpmin;
        c = 1.0 + aa / c;
        if (std::abs(c) < fpmin) c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < eps) return h;
    }
    // Extremely skewed parameters: return the best estimate; accuracy is
    // still far beyond what p-value reporting needs.
    return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
    if (a <= 0.0 || b <= 0.0)
        throw std::invalid_argument("incomplete_beta: a, b must be > 0");
    if (x < 0.0 || x > 1.0)
        throw std::invalid_argument("incomplete_beta: x outside [0,1]");
    if (x == 0.0) return 0.0;
    if (x == 1.0) return 1.0;

    const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                            a * std::log(x) + b * std::log1p(-x);
    const double front = std::exp(ln_front);
    // Use the continued fraction in its fast-converging region; apply the
    // symmetry I_x(a,b) = 1 - I_{1-x}(b,a) otherwise.
    if (x < (a + 1.0) / (a + b + 2.0)) return front * beta_cf(a, b, x) / a;
    return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double nu) {
    if (nu <= 0.0) throw std::invalid_argument("student_t_cdf: nu must be > 0");
    if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
    const double x = nu / (nu + t * t);
    const double half_tail = 0.5 * incomplete_beta(nu / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - half_tail : half_tail;
}

double student_t_two_sided_p(double t, double nu) {
    if (nu <= 0.0)
        throw std::invalid_argument("student_t_two_sided_p: nu must be > 0");
    const double x = nu / (nu + t * t);
    return incomplete_beta(nu / 2.0, 0.5, x);
}

double f_cdf(double f, double d1, double d2) {
    if (d1 <= 0.0 || d2 <= 0.0)
        throw std::invalid_argument("f_cdf: degrees of freedom must be > 0");
    if (f <= 0.0) return 0.0;
    return incomplete_beta(d1 / 2.0, d2 / 2.0, d1 * f / (d1 * f + d2));
}

double f_upper_p(double f, double d1, double d2) {
    return 1.0 - f_cdf(f, d1, d2);
}

}  // namespace ehdse::numeric
