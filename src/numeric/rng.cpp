#include "numeric/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ehdse::numeric {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

rng::rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
    // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
    // zero outputs from any seed, but guard anyway.
    if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t rng::next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

void rng::jump() noexcept {
    // long_jump polynomial of xoshiro256++ (advance 2^192 steps).
    static constexpr std::uint64_t jump_poly[] = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
        0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t poly : jump_poly) {
        for (int b = 0; b < 64; ++b) {
            if (poly & (std::uint64_t{1} << b))
                for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
            next();
        }
    }
    s_ = acc;
}

rng rng::split() noexcept {
    rng child = *this;
    jump();  // advance this stream past the child's future outputs
    return child;
}

double rng::uniform() noexcept {
    // 53 top bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::size_t rng::uniform_index(std::size_t n) noexcept {
    // Rejection-free multiply-shift is fine for our n << 2^64.
    return static_cast<std::size_t>(uniform() * static_cast<double>(n)) % n;
}

double rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

bool rng::bernoulli(double p) noexcept {
    return uniform() < std::clamp(p, 0.0, 1.0);
}

std::vector<std::size_t> rng::permutation(std::size_t n) {
    std::vector<std::size_t> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    for (std::size_t i = n; i-- > 1;)
        std::swap(out[i], out[uniform_index(i + 1)]);
    return out;
}

}  // namespace ehdse::numeric
