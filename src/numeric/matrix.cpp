#include "numeric/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ehdse::numeric {

matrix::matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& r : init) {
        if (r.size() != cols_)
            throw std::invalid_argument("matrix initializer rows have unequal lengths");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

matrix matrix::identity(std::size_t n) {
    matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) m.at_unchecked(i, i) = 1.0;
    return m;
}

matrix matrix::diagonal(const vec& d) {
    matrix m(d.size(), d.size(), 0.0);
    for (std::size_t i = 0; i < d.size(); ++i) m.at_unchecked(i, i) = d[i];
    return m;
}

matrix matrix::from_rows(const std::vector<vec>& rows) {
    matrix m;
    for (const auto& r : rows) m.append_row(r);
    return m;
}

std::span<double> matrix::row(std::size_t r) {
    if (r >= rows_) throw std::out_of_range("matrix::row out of range");
    return {data_.data() + r * cols_, cols_};
}

std::span<const double> matrix::row(std::size_t r) const {
    if (r >= rows_) throw std::out_of_range("matrix::row out of range");
    return {data_.data() + r * cols_, cols_};
}

vec matrix::col(std::size_t c) const {
    if (c >= cols_) throw std::out_of_range("matrix::col out of range");
    vec out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = at_unchecked(r, c);
    return out;
}

void matrix::set_row(std::size_t r, std::span<const double> values) {
    if (r >= rows_) throw std::out_of_range("matrix::set_row out of range");
    if (values.size() != cols_)
        throw std::invalid_argument("matrix::set_row size mismatch");
    std::copy(values.begin(), values.end(), data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

void matrix::append_row(std::span<const double> values) {
    if (empty() && rows_ == 0) {
        if (cols_ == 0) cols_ = values.size();
    }
    if (values.size() != cols_)
        throw std::invalid_argument("matrix::append_row size mismatch");
    data_.insert(data_.end(), values.begin(), values.end());
    ++rows_;
}

void matrix::remove_row(std::size_t r) {
    if (r >= rows_) throw std::out_of_range("matrix::remove_row out of range");
    const auto first = data_.begin() + static_cast<std::ptrdiff_t>(r * cols_);
    data_.erase(first, first + static_cast<std::ptrdiff_t>(cols_));
    --rows_;
}

matrix matrix::transposed() const {
    matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            t.at_unchecked(c, r) = at_unchecked(r, c);
    return t;
}

matrix matrix::operator*(const matrix& other) const {
    if (cols_ != other.rows_)
        throw std::invalid_argument("matrix product dimension mismatch: " +
                                    std::to_string(cols_) + " vs " + std::to_string(other.rows_));
    matrix out(rows_, other.cols_, 0.0);
    // ikj ordering keeps the inner loop contiguous over both operands.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = at_unchecked(i, k);
            if (a == 0.0) continue;
            for (std::size_t j = 0; j < other.cols_; ++j)
                out.at_unchecked(i, j) += a * other.at_unchecked(k, j);
        }
    }
    return out;
}

vec matrix::operator*(const vec& v) const {
    if (v.size() != cols_)
        throw std::invalid_argument("matrix-vector product dimension mismatch");
    vec out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double* rp = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) acc += rp[c] * v[c];
        out[r] = acc;
    }
    return out;
}

void matrix::check_same_shape(const matrix& other) const {
    if (rows_ != other.rows_ || cols_ != other.cols_)
        throw std::invalid_argument("matrix shape mismatch");
}

matrix matrix::operator+(const matrix& other) const {
    matrix out = *this;
    out += other;
    return out;
}

matrix matrix::operator-(const matrix& other) const {
    matrix out = *this;
    out -= other;
    return out;
}

matrix& matrix::operator+=(const matrix& other) {
    check_same_shape(other);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

matrix& matrix::operator-=(const matrix& other) {
    check_same_shape(other);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

matrix matrix::operator*(double s) const {
    matrix out = *this;
    out *= s;
    return out;
}

matrix& matrix::operator*=(double s) {
    for (double& x : data_) x *= s;
    return *this;
}

matrix matrix::gram() const {
    matrix g(cols_, cols_, 0.0);
    // Accumulate rank-1 updates row by row; symmetric fill afterwards.
    for (std::size_t r = 0; r < rows_; ++r) {
        const double* rp = data_.data() + r * cols_;
        for (std::size_t i = 0; i < cols_; ++i) {
            const double a = rp[i];
            if (a == 0.0) continue;
            for (std::size_t j = i; j < cols_; ++j)
                g.at_unchecked(i, j) += a * rp[j];
        }
    }
    for (std::size_t i = 0; i < cols_; ++i)
        for (std::size_t j = 0; j < i; ++j)
            g.at_unchecked(i, j) = g.at_unchecked(j, i);
    return g;
}

double matrix::frobenius_norm() const {
    double acc = 0.0;
    for (double x : data_) acc += x * x;
    return std::sqrt(acc);
}

double matrix::max_abs_diff(const matrix& other) const {
    check_same_shape(other);
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(data_[i] - other.data_[i]));
    return m;
}

std::string matrix::to_string(int precision) const {
    std::ostringstream os;
    os.precision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        os << (r == 0 ? "[" : " ");
        for (std::size_t c = 0; c < cols_; ++c)
            os << at_unchecked(r, c) << (c + 1 < cols_ ? ", " : "");
        os << (r + 1 < rows_ ? ";\n" : "]");
    }
    return os.str();
}

double dot(const vec& a, const vec& b) {
    if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

double norm(const vec& v) { return std::sqrt(dot(v, v)); }

vec add(const vec& a, const vec& b) {
    if (a.size() != b.size()) throw std::invalid_argument("add: size mismatch");
    vec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
    return out;
}

vec sub(const vec& a, const vec& b) {
    if (a.size() != b.size()) throw std::invalid_argument("sub: size mismatch");
    vec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
    return out;
}

vec scale(const vec& v, double s) {
    vec out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
    return out;
}

vec axpy(const vec& a, double s, const vec& b) {
    if (a.size() != b.size()) throw std::invalid_argument("axpy: size mismatch");
    vec out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
    return out;
}

double max_abs(const vec& v) {
    double m = 0.0;
    for (double x : v) m = std::max(m, std::abs(x));
    return m;
}

}  // namespace ehdse::numeric
