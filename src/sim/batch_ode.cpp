#include "sim/batch_ode.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ehdse::sim {

void batch_state::set_lane(std::size_t lane, std::span<const double> x) {
    if (x.size() != vars_)
        throw std::invalid_argument("batch_state::set_lane: size mismatch");
    for (std::size_t v = 0; v < vars_; ++v) var(v)[lane] = x[v];
}

std::vector<double> batch_state::lane_state(std::size_t lane) const {
    std::vector<double> x(vars_);
    for (std::size_t v = 0; v < vars_; ++v) x[v] = var(v)[lane];
    return x;
}

namespace {
// Cash–Karp tableau — identical to the scalar integrator (ode.cpp); the
// batch_vs_scalar differential property depends on the two staying in sync.
constexpr double a2 = 1.0 / 5.0;
constexpr double a3 = 3.0 / 10.0;
constexpr double a4 = 3.0 / 5.0;
constexpr double a5 = 1.0;
constexpr double a6 = 7.0 / 8.0;

constexpr double b21 = 1.0 / 5.0;
constexpr double b31 = 3.0 / 40.0, b32 = 9.0 / 40.0;
constexpr double b41 = 3.0 / 10.0, b42 = -9.0 / 10.0, b43 = 6.0 / 5.0;
constexpr double b51 = -11.0 / 54.0, b52 = 5.0 / 2.0, b53 = -70.0 / 27.0,
                 b54 = 35.0 / 27.0;
constexpr double b61 = 1631.0 / 55296.0, b62 = 175.0 / 512.0,
                 b63 = 575.0 / 13824.0, b64 = 44275.0 / 110592.0,
                 b65 = 253.0 / 4096.0;

constexpr double c1 = 37.0 / 378.0, c3 = 250.0 / 621.0, c4 = 125.0 / 594.0,
                 c6 = 512.0 / 1771.0;
constexpr double d1 = 2825.0 / 27648.0, d3 = 18575.0 / 48384.0,
                 d4 = 13525.0 / 55296.0, d5 = 277.0 / 14336.0, d6 = 1.0 / 4.0;
}  // namespace

batch_rk45_integrator::batch_rk45_integrator(std::size_t vars,
                                             std::size_t lanes,
                                             ode_options options)
    : vars_(vars),
      lanes_(lanes),
      opt_(options),
      dt_hint_(lanes, 0.0),
      dt_try_(lanes, 0.0),
      stage_t_(lanes, 0.0),
      err_(lanes, 0.0),
      attempt_(lanes, 0),
      failed_(lanes, 0),
      segment_attempts_(lanes, 0),
      steps_taken_(lanes, 0),
      steps_rejected_(lanes, 0),
      k1_(vars, lanes),
      k2_(vars, lanes),
      k3_(vars, lanes),
      k4_(vars, lanes),
      k5_(vars, lanes),
      k6_(vars, lanes),
      xtmp_(vars, lanes),
      x5_(vars, lanes) {
    if (vars == 0 || lanes == 0)
        throw std::invalid_argument("batch_rk45_integrator: empty batch");
}

std::size_t batch_rk45_integrator::step_once(const batch_analog_system& sys,
                                             std::span<double> t,
                                             std::span<const double> target,
                                             batch_state& x,
                                             std::span<lane_step> outcome) {
    const std::size_t B = lanes_;
    if (t.size() != B || target.size() != B || outcome.size() != B ||
        x.lanes() != B || x.vars() != vars_)
        throw std::invalid_argument("batch_rk45_integrator: size mismatch");

    // Build this sweep's attempt mask and per-lane trial steps. An
    // inactive lane gets dt_try = 0, which makes every stage below a
    // no-op for its slots (xtmp == x, stage time == t) without branching
    // inside the vectorised loops.
    std::size_t attempted = 0;
    for (std::size_t l = 0; l < B; ++l) {
        outcome[l] = lane_step::idle;
        const bool active = !failed_[l] && t[l] < target[l];
        attempt_[l] = active ? 1 : 0;
        if (!active) {
            dt_try_[l] = 0.0;
            continue;
        }
        ++attempted;
        double dt = dt_hint_[l] > 0.0 ? dt_hint_[l] : opt_.initial_dt;
        dt = std::min(dt, opt_.max_dt);
        dt = std::min(dt, target[l] - t[l]);
        dt_try_[l] = dt;
    }
    if (attempted == 0) return 0;

    const auto stage = [&](const batch_state& from, double frac,
                           batch_state& k) {
        for (std::size_t l = 0; l < B; ++l)
            stage_t_[l] = t[l] + frac * dt_try_[l];
        sys.derivatives(stage_t_, from, k, attempt_);
    };

    // Six Cash–Karp stages, each a flat var-major loop over lanes.
    stage(x, 0.0, k1_);
    for (std::size_t v = 0; v < vars_; ++v) {
        const double* xv = x.var(v);
        const double* k1v = k1_.var(v);
        double* tv = xtmp_.var(v);
        const double* dt = dt_try_.data();
        for (std::size_t l = 0; l < B; ++l)
            tv[l] = xv[l] + dt[l] * (b21 * k1v[l]);
    }
    stage(xtmp_, a2, k2_);
    for (std::size_t v = 0; v < vars_; ++v) {
        const double* xv = x.var(v);
        const double* k1v = k1_.var(v);
        const double* k2v = k2_.var(v);
        double* tv = xtmp_.var(v);
        const double* dt = dt_try_.data();
        for (std::size_t l = 0; l < B; ++l)
            tv[l] = xv[l] + dt[l] * (b31 * k1v[l] + b32 * k2v[l]);
    }
    stage(xtmp_, a3, k3_);
    for (std::size_t v = 0; v < vars_; ++v) {
        const double* xv = x.var(v);
        const double* k1v = k1_.var(v);
        const double* k2v = k2_.var(v);
        const double* k3v = k3_.var(v);
        double* tv = xtmp_.var(v);
        const double* dt = dt_try_.data();
        for (std::size_t l = 0; l < B; ++l)
            tv[l] = xv[l] +
                    dt[l] * (b41 * k1v[l] + b42 * k2v[l] + b43 * k3v[l]);
    }
    stage(xtmp_, a4, k4_);
    for (std::size_t v = 0; v < vars_; ++v) {
        const double* xv = x.var(v);
        const double* k1v = k1_.var(v);
        const double* k2v = k2_.var(v);
        const double* k3v = k3_.var(v);
        const double* k4v = k4_.var(v);
        double* tv = xtmp_.var(v);
        const double* dt = dt_try_.data();
        for (std::size_t l = 0; l < B; ++l)
            tv[l] = xv[l] + dt[l] * (b51 * k1v[l] + b52 * k2v[l] +
                                     b53 * k3v[l] + b54 * k4v[l]);
    }
    stage(xtmp_, a5, k5_);
    for (std::size_t v = 0; v < vars_; ++v) {
        const double* xv = x.var(v);
        const double* k1v = k1_.var(v);
        const double* k2v = k2_.var(v);
        const double* k3v = k3_.var(v);
        const double* k4v = k4_.var(v);
        const double* k5v = k5_.var(v);
        double* tv = xtmp_.var(v);
        const double* dt = dt_try_.data();
        for (std::size_t l = 0; l < B; ++l)
            tv[l] = xv[l] + dt[l] * (b61 * k1v[l] + b62 * k2v[l] +
                                     b63 * k3v[l] + b64 * k4v[l] +
                                     b65 * k5v[l]);
    }
    stage(xtmp_, a6, k6_);

    // Embedded 4th/5th-order error estimate, per lane (max over variables).
    for (std::size_t l = 0; l < B; ++l) err_[l] = 0.0;
    for (std::size_t v = 0; v < vars_; ++v) {
        const double* xv = x.var(v);
        const double* k1v = k1_.var(v);
        const double* k3v = k3_.var(v);
        const double* k4v = k4_.var(v);
        const double* k5v = k5_.var(v);
        const double* k6v = k6_.var(v);
        double* x5v = x5_.var(v);
        const double* dt = dt_try_.data();
        double* err = err_.data();
        for (std::size_t l = 0; l < B; ++l) {
            const double x5 = xv[l] + dt[l] * (c1 * k1v[l] + c3 * k3v[l] +
                                               c4 * k4v[l] + c6 * k6v[l]);
            const double x4 =
                xv[l] + dt[l] * (d1 * k1v[l] + d3 * k3v[l] + d4 * k4v[l] +
                                 d5 * k5v[l] + d6 * k6v[l]);
            x5v[l] = x5;
            const double sc =
                opt_.abs_tol +
                opt_.rel_tol * std::max(std::abs(xv[l]), std::abs(x5));
            err[l] = std::max(err[l], std::abs(x5 - x4) / sc);
        }
    }

    // Per-lane accept/reject — scalar bookkeeping (pow is off the
    // vector path; it runs once per lane per sweep, not per stage).
    for (std::size_t l = 0; l < B; ++l) {
        if (!attempt_[l]) continue;
        if (segment_attempts_[l] >= opt_.max_steps) {
            failed_[l] = 1;
            outcome[l] = lane_step::failed;
            continue;
        }
        ++segment_attempts_[l];
        const double dt = dt_try_[l];
        const double err_ratio = err_[l];
        if (err_ratio <= 1.0) {
            t[l] += dt;
            for (std::size_t v = 0; v < vars_; ++v)
                x.var(v)[l] = x5_.var(v)[l];
            ++steps_taken_[l];
            outcome[l] = lane_step::advanced;
            const double grow =
                err_ratio > 1e-10 ? 0.9 * std::pow(err_ratio, -0.2) : 5.0;
            dt_hint_[l] = std::min(dt * std::min(grow, 5.0), opt_.max_dt);
        } else {
            ++steps_rejected_[l];
            const double shrunk =
                dt * std::max(0.9 * std::pow(err_ratio, -0.25), 0.1);
            dt_hint_[l] = shrunk;
            if (shrunk < opt_.min_dt) {
                failed_[l] = 1;
                outcome[l] = lane_step::failed;
            } else {
                outcome[l] = lane_step::rejected;
            }
        }
    }
    return attempted;
}

}  // namespace ehdse::sim
