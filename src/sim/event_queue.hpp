// Discrete-event side of the mixed-signal kernel.
//
// A priority queue of timestamped actions with deterministic tie-breaking:
// events at equal times fire in scheduling order (FIFO), mirroring the
// delta-cycle determinism digital designers expect from an HDL kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace ehdse::sim {

/// Handle used to cancel a scheduled event.
using event_id = std::uint64_t;

/// Time-ordered queue of callbacks. Not thread-safe (the kernel is
/// single-threaded by design, as in SystemC's evaluate/update model).
class event_queue {
public:
    /// Schedule `action` at absolute time `t`. Returns a cancellation handle.
    event_id schedule(double t, std::function<void()> action);

    /// Cancel a pending event. Returns false when the id already fired,
    /// was cancelled before, or never existed.
    bool cancel(event_id id);

    /// True when no live events remain.
    bool empty() const noexcept { return live_count_ == 0; }

    /// Number of live (not-yet-fired, not-cancelled) events.
    std::size_t size() const noexcept { return live_count_; }

    /// Time of the earliest live event. Throws std::logic_error when empty.
    double next_time() const;

    /// Pop and run the earliest live event; returns its time.
    /// Throws std::logic_error when empty.
    double pop_and_run();

    /// Total number of events executed so far (diagnostics).
    std::uint64_t executed_count() const noexcept { return executed_; }

private:
    struct entry {
        double time;
        std::uint64_t seq;  // FIFO tie-break at equal times
        event_id id;
        std::function<void()> action;
    };
    struct later {
        bool operator()(const entry& a, const entry& b) const noexcept {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    /// Remove cancelled entries from the heap top so top() is live.
    void drop_cancelled() const;

    mutable std::priority_queue<entry, std::vector<entry>, later> heap_;
    std::unordered_set<event_id> pending_;  // ids scheduled and not yet fired/cancelled
    std::uint64_t next_seq_ = 0;
    event_id next_id_ = 1;
    std::size_t live_count_ = 0;
    std::uint64_t executed_ = 0;
};

}  // namespace ehdse::sim
