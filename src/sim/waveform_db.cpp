#include "sim/waveform_db.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace ehdse::sim {

waveform_db::waveform_db(double timescale_s) : timescale_s_(timescale_s) {
    if (timescale_s_ <= 0.0)
        throw std::invalid_argument("waveform_db: timescale must be > 0");
}

std::size_t waveform_db::add_signal(const std::string& name, double min_interval) {
    if (name.empty())
        throw std::invalid_argument("waveform_db: empty signal name");
    // One printable-ASCII identifier code per signal ('!' .. 'z').
    if (traces_.size() >= 90)
        throw std::length_error("waveform_db: at most 90 signals supported");
    for (const trace& t : traces_)
        if (t.name() == name)
            throw std::invalid_argument("waveform_db: duplicate signal '" + name + "'");
    traces_.emplace_back(name, min_interval);
    return traces_.size() - 1;
}

void waveform_db::record(std::size_t index, double t, double value) {
    if (index >= traces_.size())
        throw std::out_of_range("waveform_db: bad signal index");
    traces_[index].record(t, value);
}

const trace& waveform_db::signal(std::size_t index) const {
    if (index >= traces_.size())
        throw std::out_of_range("waveform_db: bad signal index");
    return traces_[index];
}

void waveform_db::write_vcd(std::ostream& os, const std::string& module_name) const {
    // Header. VCD identifiers: printable ASCII, one short code per signal.
    os << "$date ehdse waveform export $end\n";
    os << "$version ehdse::sim::waveform_db $end\n";
    if (timescale_s_ >= 1.0)
        os << "$timescale " << static_cast<long long>(timescale_s_) << " s $end\n";
    else if (timescale_s_ >= 1e-3)
        os << "$timescale " << static_cast<long long>(timescale_s_ * 1e3) << " ms $end\n";
    else if (timescale_s_ >= 1e-6)
        os << "$timescale " << static_cast<long long>(timescale_s_ * 1e6) << " us $end\n";
    else
        os << "$timescale " << static_cast<long long>(timescale_s_ * 1e9) << " ns $end\n";

    os << "$scope module " << module_name << " $end\n";
    for (std::size_t i = 0; i < traces_.size(); ++i) {
        const char code = static_cast<char>('!' + i);  // '!', '"', '#', ...
        os << "$var real 64 " << code << ' ' << traces_[i].name() << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";

    // Merge all samples into one time-ordered stream.
    std::multimap<long long, std::pair<char, double>> events;
    for (std::size_t i = 0; i < traces_.size(); ++i) {
        const char code = static_cast<char>('!' + i);
        const auto& t = traces_[i];
        for (std::size_t s = 0; s < t.size(); ++s) {
            const auto stamp =
                static_cast<long long>(std::llround(t.times()[s] / timescale_s_));
            events.emplace(stamp, std::make_pair(code, t.values()[s]));
        }
    }

    long long current = -1;
    for (const auto& [stamp, ev] : events) {
        if (stamp != current) {
            os << '#' << stamp << '\n';
            current = stamp;
        }
        os << 'r' << ev.second << ' ' << ev.first << '\n';
    }
}

void waveform_db::write_csv(std::ostream& os) const {
    os << "time";
    for (const trace& t : traces_) os << ',' << t.name();
    os << '\n';

    // Union of all timestamps.
    std::vector<double> stamps;
    for (const trace& t : traces_)
        stamps.insert(stamps.end(), t.times().begin(), t.times().end());
    std::sort(stamps.begin(), stamps.end());
    stamps.erase(std::unique(stamps.begin(), stamps.end()), stamps.end());

    for (double t : stamps) {
        os << t;
        for (const trace& tr : traces_)
            os << ',' << (tr.empty() ? 0.0 : tr.sample(t));
        os << '\n';
    }
}

}  // namespace ehdse::sim
