// Batch mixed-signal coordinator: B design points, one step sweep.
//
// Mirrors `simulator` (the scalar kernel) lane-for-lane. Each lane owns a
// digital event queue and a `sim_context` handle, so the digital processes
// (sensor node, tuning controller) written against sim_context run
// unmodified per lane. The analogue side advances all lanes together
// through `batch_rk45_integrator` under a merged next-event horizon:
//
//   1. each lane's integration target is min(its next event time, t_end);
//   2. one masked RK45 sweep advances every lane still short of its
//      target (per-lane adaptive dt — a stiff lane cannot stall the rest);
//   3. lanes that arrive are snapped exactly onto their target (as the
//      scalar kernel snaps now_ = t_target), their due events fire in FIFO
//      order, their targets are recomputed, and the sweep loop continues
//      until every lane reaches t_end or fails.
//
// Lanes are fully independent: a lane's trajectory, step sizes and event
// schedule do not depend on which other lanes share the batch (the
// differential property checks batch(B) == batch(1) == scalar for all B).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/batch_ode.hpp"
#include "sim/context.hpp"
#include "sim/event_queue.hpp"

namespace ehdse::obs {
class counter;
}

namespace ehdse::sim {

/// Drives one batch_analog_system plus one event queue per lane.
class batch_simulator {
public:
    /// Every lane starts from the same initial state (design points that
    /// differ in initial state can overwrite per lane via set_state before
    /// running). The system must outlive the simulator.
    batch_simulator(batch_analog_system& sys, std::vector<double> initial_state,
                    ode_options options = {});

    std::size_t lanes() const noexcept { return lanes_; }

    /// Per-lane kernel handle for digital processes. Valid for the
    /// simulator's lifetime.
    sim_context& lane(std::size_t l) { return lane_ctx_.at(l); }

    double now(std::size_t l) const { return now_.at(l); }
    double state_at(std::size_t l, std::size_t var) const {
        return state_.at(var, l);
    }
    void set_state(std::size_t l, std::size_t var, double value) {
        state_.set(var, l, value);
    }

    /// Track the running min/max of one state variable per lane, sampled
    /// after every accepted step and every event batch — the batch
    /// equivalent of a scalar step observer watching e.g. the supercap
    /// voltage. Seeded from the current state.
    void watch_range(std::size_t var);
    double watched_min(std::size_t l) const { return watch_min_.at(l); }
    double watched_max(std::size_t l) const { return watch_max_.at(l); }

    /// Advance every lane to t_end, firing due events per lane. Returns
    /// true when ALL lanes completed; per-lane success via lane_ok().
    /// A failed lane (integrator underflow or non-finite state after an
    /// event) stops where it failed; the others keep running.
    bool run_until(double t_end);

    bool lane_ok(std::size_t l) const { return ok_.at(l) != 0; }
    bool lane_state_finite(std::size_t l) const;

    std::size_t lane_steps(std::size_t l) const {
        return integrator_.steps_taken(l);
    }
    std::size_t lane_rejected_steps(std::size_t l) const {
        return integrator_.steps_rejected(l);
    }
    std::uint64_t lane_events(std::size_t l) const {
        return queues_.at(l).executed_count();
    }

    ode_options& options() noexcept { return integrator_.options(); }

private:
    /// sim_context implementation forwarding to one lane of the owner.
    class lane_context final : public sim_context {
    public:
        lane_context(batch_simulator& owner, std::size_t lane)
            : owner_(&owner), lane_(lane) {}
        double now() const override { return owner_->now_[lane_]; }
        double state_at(std::size_t i) const override {
            return owner_->state_.at(i, lane_);
        }
        void set_state(std::size_t i, double value) override {
            owner_->state_.set(i, lane_, value);
        }
        event_id at(double t, std::function<void()> action) override;
        event_id after(double delay, std::function<void()> action) override;
        bool cancel(event_id id) override {
            return owner_->queues_[lane_].cancel(id);
        }

    private:
        batch_simulator* owner_;
        std::size_t lane_;
    };

    /// Fire lane l's due events, verify finiteness, refresh the watch, and
    /// recompute its integration target. Marks the lane done when it has
    /// reached t_end with no due events left.
    void service_lane(std::size_t l, double t_end);
    void update_watch(std::size_t l);
    void flush_metrics();

    batch_analog_system& sys_;
    std::size_t lanes_;
    batch_state state_;
    batch_rk45_integrator integrator_;
    std::vector<event_queue> queues_;
    std::vector<lane_context> lane_ctx_;
    std::vector<double> now_;
    std::vector<double> target_;
    std::vector<lane_step> outcome_;
    std::vector<std::uint8_t> ok_;
    std::vector<std::uint8_t> done_;
    bool watching_ = false;
    std::size_t watch_var_ = 0;
    std::vector<double> watch_min_;
    std::vector<double> watch_max_;
    // Process-wide metrics (sim.batch.*), resolved once at construction and
    // flushed per run — never touched inside the sweep loop.
    obs::counter* steps_counter_ = nullptr;
    obs::counter* rejected_counter_ = nullptr;
    obs::counter* events_counter_ = nullptr;
    obs::counter* sweeps_counter_ = nullptr;
    std::uint64_t flushed_steps_ = 0;
    std::uint64_t flushed_rejected_ = 0;
    std::uint64_t flushed_events_ = 0;
    std::uint64_t sweeps_ = 0;
    std::uint64_t flushed_sweeps_ = 0;
};

}  // namespace ehdse::sim
