#include "sim/batch_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace ehdse::sim {

batch_simulator::batch_simulator(batch_analog_system& sys,
                                 std::vector<double> initial_state,
                                 ode_options options)
    : sys_(sys),
      lanes_(sys.lanes()),
      state_(sys.state_size(), sys.lanes()),
      integrator_(sys.state_size(), sys.lanes(), options),
      queues_(sys.lanes()),
      now_(sys.lanes(), 0.0),
      target_(sys.lanes(), 0.0),
      outcome_(sys.lanes(), lane_step::idle),
      ok_(sys.lanes(), 1),
      done_(sys.lanes(), 0),
      watch_min_(sys.lanes(), 0.0),
      watch_max_(sys.lanes(), 0.0) {
    if (initial_state.size() != sys.state_size())
        throw std::invalid_argument(
            "batch_simulator: initial state size mismatch");
    lane_ctx_.reserve(lanes_);
    for (std::size_t l = 0; l < lanes_; ++l) {
        lane_ctx_.emplace_back(*this, l);
        state_.set_lane(l, initial_state);
    }
    if (obs::metrics_registry* reg = obs::global_registry()) {
        steps_counter_ = &reg->get_counter("sim.batch.ode_steps");
        rejected_counter_ = &reg->get_counter("sim.batch.ode_steps_rejected");
        events_counter_ = &reg->get_counter("sim.batch.events");
        sweeps_counter_ = &reg->get_counter("sim.batch.sweeps");
    }
}

event_id batch_simulator::lane_context::at(double t,
                                           std::function<void()> action) {
    if (t < owner_->now_[lane_])
        throw std::invalid_argument(
            "batch_simulator: cannot schedule in the past");
    return owner_->queues_[lane_].schedule(t, std::move(action));
}

event_id batch_simulator::lane_context::after(double delay,
                                              std::function<void()> action) {
    if (delay < 0.0)
        throw std::invalid_argument("batch_simulator: negative delay");
    return owner_->queues_[lane_].schedule(owner_->now_[lane_] + delay,
                                           std::move(action));
}

void batch_simulator::watch_range(std::size_t var) {
    if (var >= state_.vars())
        throw std::invalid_argument("batch_simulator::watch_range: bad var");
    watching_ = true;
    watch_var_ = var;
    for (std::size_t l = 0; l < lanes_; ++l)
        watch_min_[l] = watch_max_[l] = state_.at(var, l);
}

void batch_simulator::update_watch(std::size_t l) {
    const double v = state_.at(watch_var_, l);
    watch_min_[l] = std::min(watch_min_[l], v);
    watch_max_[l] = std::max(watch_max_[l], v);
}

bool batch_simulator::lane_state_finite(std::size_t l) const {
    for (std::size_t v = 0; v < state_.vars(); ++v)
        if (!std::isfinite(state_.at(v, l))) return false;
    return true;
}

void batch_simulator::service_lane(std::size_t l, double t_end) {
    // Fire every event due at/before now (same-time re-schedules fire too:
    // FIFO), exactly like the scalar kernel's event loop.
    event_queue& q = queues_[l];
    const bool fired = !q.empty() && q.next_time() <= now_[l];
    while (!q.empty() && q.next_time() <= now_[l]) q.pop_and_run();
    if (fired) {
        // An event that corrupted the analogue state (fault-injected NaN,
        // runaway withdrawal) fails the lane here, cleanly, instead of
        // sending its integrator into a min_dt death spiral.
        if (!lane_state_finite(l)) {
            ok_[l] = 0;
            return;
        }
        if (watching_) update_watch(l);
    }
    // Next integration target: the earliest pending event within the
    // horizon, else the horizon itself.
    target_[l] =
        (!q.empty() && q.next_time() <= t_end) ? q.next_time() : t_end;
    if (now_[l] >= target_[l]) {
        // Reached the horizon with nothing left to run.
        done_[l] = 1;
        return;
    }
    // New segment between digital events: fresh max_steps budget, exactly
    // like one scalar integrate() call.
    integrator_.start_segment(l);
}

bool batch_simulator::run_until(double t_end) {
    for (std::size_t l = 0; l < lanes_; ++l) {
        if (t_end < now_[l])
            throw std::invalid_argument(
                "batch_simulator::run_until: horizon in the past");
        done_[l] = 0;
        // Treat every live lane as "arrived" so the first loop iteration
        // services initial events (e.g. wake-ups scheduled at t = 0).
        target_[l] = now_[l];
    }

    while (true) {
        std::size_t live = 0;
        for (std::size_t l = 0; l < lanes_; ++l) {
            if (!ok_[l] || done_[l]) continue;
            if (now_[l] >= target_[l]) {
                // Arrived: snap exactly onto the target (the scalar kernel
                // sets now_ = t_target after integrate_to) and service.
                now_[l] = target_[l];
                service_lane(l, t_end);
            }
            if (ok_[l] && !done_[l]) ++live;
        }
        if (live == 0) break;

        ++sweeps_;
        integrator_.step_once(sys_, now_, target_, state_, outcome_);
        for (std::size_t l = 0; l < lanes_; ++l) {
            switch (outcome_[l]) {
                case lane_step::advanced:
                    if (watching_) update_watch(l);
                    break;
                case lane_step::failed:
                    ok_[l] = 0;
                    break;
                case lane_step::idle:
                case lane_step::rejected:
                    break;
            }
        }
    }

    flush_metrics();
    bool all_ok = true;
    for (std::size_t l = 0; l < lanes_; ++l) {
        if (ok_[l] && !lane_state_finite(l)) ok_[l] = 0;
        all_ok = all_ok && ok_[l] != 0;
    }
    return all_ok;
}

void batch_simulator::flush_metrics() {
    if (!steps_counter_) return;
    std::uint64_t steps = 0, rejected = 0, events = 0;
    for (std::size_t l = 0; l < lanes_; ++l) {
        steps += integrator_.steps_taken(l);
        rejected += integrator_.steps_rejected(l);
        events += queues_[l].executed_count();
    }
    steps_counter_->add(steps - flushed_steps_);
    rejected_counter_->add(rejected - flushed_rejected_);
    events_counter_->add(events - flushed_events_);
    sweeps_counter_->add(sweeps_ - flushed_sweeps_);
    flushed_steps_ = steps;
    flushed_rejected_ = rejected;
    flushed_events_ = events;
    flushed_sweeps_ = sweeps_;
}

}  // namespace ehdse::sim
