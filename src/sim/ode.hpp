// Continuous-time (analogue) part of the mixed-signal kernel.
//
// SystemC-A couples an analogue equation set solved by a variable-step
// integrator with digital processes. Here the analogue side is an explicit
// ODE system dx/dt = f(t, x) advanced by either a fixed-step RK4 or an
// adaptive Cash–Karp RK45 integrator. The simulator (simulator.hpp)
// guarantees integration is always stopped exactly at digital event times,
// so digital processes observe and perturb a consistent analogue state.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "numeric/matrix.hpp"

namespace ehdse::sim {

/// Interface for an analogue equation set dx/dt = f(t, x).
///
/// Implementations may hold mutable "inputs" (e.g. the present load
/// conductance across the supercapacitor) that digital processes adjust
/// between integration segments.
class analog_system {
public:
    virtual ~analog_system() = default;

    /// Number of continuous state variables.
    virtual std::size_t state_size() const = 0;

    /// Evaluate dx/dt into `dxdt` (pre-sized to state_size()).
    virtual void derivatives(double t, std::span<const double> x,
                             std::span<double> dxdt) const = 0;
};

/// Adapter turning a lambda into an analog_system.
class functional_system final : public analog_system {
public:
    using rhs_fn = std::function<void(double, std::span<const double>, std::span<double>)>;

    functional_system(std::size_t n, rhs_fn rhs)
        : n_(n), rhs_(std::move(rhs)) {}

    std::size_t state_size() const override { return n_; }
    void derivatives(double t, std::span<const double> x,
                     std::span<double> dxdt) const override {
        rhs_(t, x, dxdt);
    }

private:
    std::size_t n_;
    rhs_fn rhs_;
};

/// Integrator tuning knobs.
struct ode_options {
    double abs_tol = 1e-9;     ///< absolute error tolerance per step (RK45)
    double rel_tol = 1e-6;     ///< relative error tolerance per step (RK45)
    double initial_dt = 1e-4;  ///< first trial step
    double min_dt = 1e-12;     ///< below this the integrator reports failure
    double max_dt = 1e30;      ///< cap on step size (set ~1/(20 f) for AC work)
    std::size_t max_steps = 200'000'000;  ///< hard safety limit per segment
};

/// Outcome of integrating one segment.
struct ode_status {
    bool ok = true;               ///< false when min_dt/max_steps was hit
    std::size_t steps_taken = 0;  ///< accepted steps
    std::size_t steps_rejected = 0;
    double last_dt = 0.0;         ///< final accepted step size (resume hint)
};

/// One classic fixed-step RK4 step: advances x from t by dt in place.
void rk4_step(const analog_system& sys, double t, double dt, std::vector<double>& x);

/// Adaptive Cash–Karp RK45 integrator with PI-free step control.
///
/// Keeps its stage buffers between calls, so a long simulation made of many
/// short segments (between digital events) does not reallocate.
class rk45_integrator {
public:
    explicit rk45_integrator(ode_options options = {}) : opt_(options) {}

    const ode_options& options() const noexcept { return opt_; }
    ode_options& options() noexcept { return opt_; }

    /// Integrate `sys` from t0 to t1 (t1 >= t0), updating x in place.
    /// `observer`, when set, is called after every accepted step with
    /// (t, x) — used for waveform tracing. An empty observer is hoisted out
    /// of the step loop entirely: the common no-tracing run pays no
    /// per-step dispatch (not even an emptiness check).
    ode_status integrate(
        const analog_system& sys, double t0, double t1, std::vector<double>& x,
        const std::function<void(double, std::span<const double>)>& observer = {});

private:
    template <typename Observer>
    ode_status integrate_loop(const analog_system& sys, double t0, double t1,
                              std::vector<double>& x, Observer&& observer);

    void resize_buffers(std::size_t n);

    ode_options opt_;
    double dt_hint_ = 0.0;  ///< carry step size across segments
    std::vector<double> k1_, k2_, k3_, k4_, k5_, k6_, xtmp_, xerr_, x5_;
};

/// Fixed-step RK4 driver over [t0, t1] with the given dt (last step clipped).
void integrate_fixed(const analog_system& sys, double t0, double t1, double dt,
                     std::vector<double>& x,
                     const std::function<void(double, std::span<const double>)>& observer = {});

}  // namespace ehdse::sim
