// Multi-signal waveform database with VCD export.
//
// Collects several traces (analogue values and digital/position signals)
// recorded against one simulation and writes them as a Value Change Dump
// file, viewable in GTKWave and friends — the artefact a mixed-signal
// designer expects from an HDL-style simulator. Real-valued signals are
// emitted as VCD `real` variables; time is quantised to a configurable
// timescale (default 1 us).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace ehdse::sim {

class waveform_db {
public:
    /// `timescale_s` sets the VCD timescale unit (must divide into
    /// whole-number timestamps; 1e-6 = microseconds).
    explicit waveform_db(double timescale_s = 1e-6);

    /// Add a named real-valued signal; returns its index. Names must be
    /// unique and non-empty.
    std::size_t add_signal(const std::string& name, double min_interval = 0.0);

    /// Record a sample on signal `index`.
    void record(std::size_t index, double t, double value);

    std::size_t signal_count() const noexcept { return traces_.size(); }
    const trace& signal(std::size_t index) const;

    /// Write every signal as a VCD file. `module_name` labels the scope.
    void write_vcd(std::ostream& os, const std::string& module_name = "ehdse") const;

    /// Write all signals as one merged CSV (time plus one column per
    /// signal, sampled at the union of all timestamps via interpolation).
    void write_csv(std::ostream& os) const;

private:
    double timescale_s_;
    std::vector<trace> traces_;
};

}  // namespace ehdse::sim
