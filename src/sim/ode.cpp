#include "sim/ode.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ehdse::sim {

void rk4_step(const analog_system& sys, double t, double dt, std::vector<double>& x) {
    const std::size_t n = x.size();
    std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
    sys.derivatives(t, x, k1);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * dt * k1[i];
    sys.derivatives(t + 0.5 * dt, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * dt * k2[i];
    sys.derivatives(t + 0.5 * dt, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + dt * k3[i];
    sys.derivatives(t + dt, tmp, k4);
    for (std::size_t i = 0; i < n; ++i)
        x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
}

void rk45_integrator::resize_buffers(std::size_t n) {
    if (k1_.size() == n) return;
    k1_.resize(n); k2_.resize(n); k3_.resize(n); k4_.resize(n);
    k5_.resize(n); k6_.resize(n); xtmp_.resize(n); xerr_.resize(n); x5_.resize(n);
}

namespace {
// Cash–Karp tableau.
constexpr double a2 = 1.0 / 5.0;
constexpr double a3 = 3.0 / 10.0;
constexpr double a4 = 3.0 / 5.0;
constexpr double a5 = 1.0;
constexpr double a6 = 7.0 / 8.0;

constexpr double b21 = 1.0 / 5.0;
constexpr double b31 = 3.0 / 40.0, b32 = 9.0 / 40.0;
constexpr double b41 = 3.0 / 10.0, b42 = -9.0 / 10.0, b43 = 6.0 / 5.0;
constexpr double b51 = -11.0 / 54.0, b52 = 5.0 / 2.0, b53 = -70.0 / 27.0,
                 b54 = 35.0 / 27.0;
constexpr double b61 = 1631.0 / 55296.0, b62 = 175.0 / 512.0,
                 b63 = 575.0 / 13824.0, b64 = 44275.0 / 110592.0,
                 b65 = 253.0 / 4096.0;

constexpr double c1 = 37.0 / 378.0, c3 = 250.0 / 621.0, c4 = 125.0 / 594.0,
                 c6 = 512.0 / 1771.0;
constexpr double d1 = 2825.0 / 27648.0, d3 = 18575.0 / 48384.0,
                 d4 = 13525.0 / 55296.0, d5 = 277.0 / 14336.0, d6 = 1.0 / 4.0;
}  // namespace

ode_status rk45_integrator::integrate(
    const analog_system& sys, double t0, double t1, std::vector<double>& x,
    const std::function<void(double, std::span<const double>)>& observer) {
    // Hoist the observer emptiness check out of the step loop: the no-op
    // functor below inlines to nothing, so untraced runs (every DoE /
    // optimiser evaluation) skip std::function dispatch entirely.
    if (observer) return integrate_loop(sys, t0, t1, x, observer);
    struct no_observer {
        void operator()(double, std::span<const double>) const noexcept {}
    };
    return integrate_loop(sys, t0, t1, x, no_observer{});
}

template <typename Observer>
ode_status rk45_integrator::integrate_loop(const analog_system& sys, double t0,
                                           double t1, std::vector<double>& x,
                                           Observer&& observer) {
    if (t1 < t0) throw std::invalid_argument("rk45_integrator: t1 < t0");
    const std::size_t n = sys.state_size();
    if (x.size() != n) throw std::invalid_argument("rk45_integrator: state size mismatch");
    resize_buffers(n);

    ode_status status;
    double t = t0;
    double dt = dt_hint_ > 0.0 ? dt_hint_ : opt_.initial_dt;
    dt = std::min(dt, opt_.max_dt);

    while (t < t1) {
        if (status.steps_taken + status.steps_rejected >= opt_.max_steps) {
            status.ok = false;
            break;
        }
        dt = std::min(dt, t1 - t);

        // Six Cash–Karp stages.
        sys.derivatives(t, x, k1_);
        for (std::size_t i = 0; i < n; ++i) xtmp_[i] = x[i] + dt * b21 * k1_[i];
        sys.derivatives(t + a2 * dt, xtmp_, k2_);
        for (std::size_t i = 0; i < n; ++i)
            xtmp_[i] = x[i] + dt * (b31 * k1_[i] + b32 * k2_[i]);
        sys.derivatives(t + a3 * dt, xtmp_, k3_);
        for (std::size_t i = 0; i < n; ++i)
            xtmp_[i] = x[i] + dt * (b41 * k1_[i] + b42 * k2_[i] + b43 * k3_[i]);
        sys.derivatives(t + a4 * dt, xtmp_, k4_);
        for (std::size_t i = 0; i < n; ++i)
            xtmp_[i] = x[i] + dt * (b51 * k1_[i] + b52 * k2_[i] + b53 * k3_[i] +
                                    b54 * k4_[i]);
        sys.derivatives(t + a5 * dt, xtmp_, k5_);
        for (std::size_t i = 0; i < n; ++i)
            xtmp_[i] = x[i] + dt * (b61 * k1_[i] + b62 * k2_[i] + b63 * k3_[i] +
                                    b64 * k4_[i] + b65 * k5_[i]);
        sys.derivatives(t + a6 * dt, xtmp_, k6_);

        double err_ratio = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double x5 = x[i] + dt * (c1 * k1_[i] + c3 * k3_[i] +
                                           c4 * k4_[i] + c6 * k6_[i]);
            const double x4 = x[i] + dt * (d1 * k1_[i] + d3 * k3_[i] +
                                           d4 * k4_[i] + d5 * k5_[i] + d6 * k6_[i]);
            x5_[i] = x5;
            const double sc = opt_.abs_tol +
                              opt_.rel_tol * std::max(std::abs(x[i]), std::abs(x5));
            err_ratio = std::max(err_ratio, std::abs(x5 - x4) / sc);
        }

        if (err_ratio <= 1.0) {
            t += dt;
            x.swap(x5_);
            ++status.steps_taken;
            observer(t, x);
            // Grow step (bounded) for the next attempt.
            const double grow =
                err_ratio > 1e-10 ? 0.9 * std::pow(err_ratio, -0.2) : 5.0;
            dt = std::min({dt * std::min(grow, 5.0), opt_.max_dt});
        } else {
            ++status.steps_rejected;
            dt *= std::max(0.9 * std::pow(err_ratio, -0.25), 0.1);
            if (dt < opt_.min_dt) {
                status.ok = false;
                break;
            }
        }
    }
    status.last_dt = dt;
    dt_hint_ = dt;
    return status;
}

void integrate_fixed(const analog_system& sys, double t0, double t1, double dt,
                     std::vector<double>& x,
                     const std::function<void(double, std::span<const double>)>& observer) {
    if (dt <= 0.0) throw std::invalid_argument("integrate_fixed: dt must be > 0");
    double t = t0;
    while (t < t1) {
        const double step = std::min(dt, t1 - t);
        rk4_step(sys, t, step, x);
        t += step;
        if (observer) observer(t, x);
    }
}

}  // namespace ehdse::sim
