// Waveform tracing — the equivalent of an HDL simulator's signal trace.
//
// A trace records (time, value) samples for one named quantity. To keep
// hour-long simulations affordable, a minimum inter-sample interval can be
// set; samples arriving faster than that are dropped (the last one at a
// given time wins so event-driven updates stay visible).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ehdse::sim {

/// Single-signal waveform recorder.
class trace {
public:
    /// `min_interval` = 0 records every sample.
    explicit trace(std::string name, double min_interval = 0.0)
        : name_(std::move(name)), min_interval_(min_interval) {}

    const std::string& name() const noexcept { return name_; }

    /// Record a sample; honours the minimum interval except that a sample at
    /// exactly the last recorded time replaces it (event updates win).
    void record(double t, double value);

    std::size_t size() const noexcept { return times_.size(); }
    bool empty() const noexcept { return times_.empty(); }

    const std::vector<double>& times() const noexcept { return times_; }
    const std::vector<double>& values() const noexcept { return values_; }

    /// Linear interpolation at time t (clamped to the recorded range).
    /// Throws std::logic_error when empty.
    double sample(double t) const;

    /// Extremes of the recorded values. Throws std::logic_error when empty.
    double min_value() const;
    double max_value() const;

    /// Last recorded value. Throws std::logic_error when empty.
    double last_value() const;

    void clear();

    /// Write "time,value" CSV rows (with a header) to the stream.
    void write_csv(std::ostream& os) const;

private:
    std::string name_;
    double min_interval_;
    std::vector<double> times_;
    std::vector<double> values_;
};

}  // namespace ehdse::sim
