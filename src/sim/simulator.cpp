#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace ehdse::sim {

simulator::simulator(analog_system& sys, std::vector<double> initial_state,
                     ode_options options)
    : sys_(sys), state_(std::move(initial_state)), integrator_(options) {
    if (state_.size() != sys_.state_size())
        throw std::invalid_argument("simulator: initial state size mismatch");
    if (obs::metrics_registry* reg = obs::global_registry()) {
        steps_counter_ = &reg->get_counter("sim.ode_steps");
        rejected_counter_ = &reg->get_counter("sim.ode_steps_rejected");
        events_counter_ = &reg->get_counter("sim.events");
    }
}

event_id simulator::at(double t, std::function<void()> action) {
    if (t < now_)
        throw std::invalid_argument("simulator::at: cannot schedule in the past");
    return queue_.schedule(t, std::move(action));
}

event_id simulator::after(double delay, std::function<void()> action) {
    if (delay < 0.0)
        throw std::invalid_argument("simulator::after: negative delay");
    return queue_.schedule(now_ + delay, std::move(action));
}

void simulator::add_step_observer(
    std::function<void(double, std::span<const double>)> obs) {
    observers_.push_back(std::move(obs));
}

void simulator::notify_observers(double t) {
    if (observers_.empty()) return;
    for (auto& obs : observers_) obs(t, state_);
}

bool simulator::integrate_to(double t_target) {
    if (t_target <= now_) return true;
    auto observer = observers_.empty()
                        ? std::function<void(double, std::span<const double>)>{}
                        : [this](double t, std::span<const double> x) {
                              for (auto& obs : observers_) obs(t, x);
                          };
    last_status_ = integrator_.integrate(sys_, now_, t_target, state_, observer);
    total_steps_ += last_status_.steps_taken;
    total_rejected_ += last_status_.steps_rejected;
    if (steps_counter_) {
        steps_counter_->add(last_status_.steps_taken);
        rejected_counter_->add(last_status_.steps_rejected);
    }
    now_ = t_target;
    return last_status_.ok;
}

void simulator::flush_event_count() {
    if (!events_counter_) return;
    const std::uint64_t executed = queue_.executed_count();
    events_counter_->add(executed - flushed_events_);
    flushed_events_ = executed;
}

bool simulator::state_finite() const noexcept {
    for (double v : state_)
        if (!std::isfinite(v)) return false;
    return true;
}

bool simulator::run_until(double t_end) {
    if (t_end < now_)
        throw std::invalid_argument("simulator::run_until: horizon in the past");

    while (!queue_.empty() && queue_.next_time() <= t_end) {
        const double te = queue_.next_time();
        if (!integrate_to(te)) {
            flush_event_count();
            return false;
        }
        // Fire every event due at te (new same-time events fire too: FIFO).
        while (!queue_.empty() && queue_.next_time() <= now_) queue_.pop_and_run();
        // An event that corrupted the analogue state (a fault injector's
        // NaN, a runaway withdrawal) must fail the run here, cleanly,
        // instead of sending the integrator into a min_dt death spiral.
        if (!state_finite()) {
            last_status_.ok = false;
            flush_event_count();
            return false;
        }
        notify_observers(now_);
    }
    const bool ok = integrate_to(t_end);
    flush_event_count();
    if (!ok || !state_finite()) {
        last_status_.ok = false;
        return false;
    }
    notify_observers(now_);
    return true;
}

process::~process() {
    // The simulator may already be gone at destruction time in user code;
    // within ehdse all processes are destroyed before their simulator, so
    // cancelling here is safe and prevents dangling callbacks.
    cancel_wake();
}

void process::wake_after(double delay) {
    cancel_wake();
    pending_ = sim_.after(delay, [this] {
        pending_ = 0;
        activate();
    });
}

void process::wake_at(double t) {
    cancel_wake();
    pending_ = sim_.at(t, [this] {
        pending_ = 0;
        activate();
    });
}

void process::cancel_wake() {
    if (pending_ != 0) {
        sim_.cancel(pending_);
        pending_ = 0;
    }
}

}  // namespace ehdse::sim
