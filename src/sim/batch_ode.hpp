// Batch (SIMD-friendly) half of the mixed-signal kernel.
//
// Every phase of the RSM flow evaluates many design points whose analogue
// structure is identical — same state layout, same equations, different
// coefficients. The batch kernel exploits that: state lives in
// structure-of-arrays form (`state[var][lane]`, contiguous per variable)
// and one Cash–Karp RK45 step advances all B lanes through flat inner
// loops over lanes that GCC auto-vectorises. Step control is per lane and
// masked: each lane carries its own adaptive dt and accept/reject
// decision, so a stiff lane shrinks its own step without stalling the
// batch, and an idle lane (sitting at its event horizon) is simply
// excluded from the sweep.
//
// The tableau and step-control formulas are copied verbatim from the
// scalar `rk45_integrator` (ode.cpp) — the differential testkit property
// `batch_vs_scalar_equivalence` holds the two implementations together.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/ode.hpp"

namespace ehdse::sim {

/// Structure-of-arrays state for B lanes of one analogue equation set.
/// Values of a given variable are contiguous across lanes (`var(v)[lane]`)
/// so per-variable loops over lanes vectorise.
class batch_state {
public:
    batch_state() = default;
    batch_state(std::size_t vars, std::size_t lanes)
        : vars_(vars), lanes_(lanes), data_(vars * lanes, 0.0) {}

    std::size_t vars() const noexcept { return vars_; }
    std::size_t lanes() const noexcept { return lanes_; }

    /// Pointer to the lane-contiguous row of variable v.
    double* var(std::size_t v) noexcept { return data_.data() + v * lanes_; }
    const double* var(std::size_t v) const noexcept {
        return data_.data() + v * lanes_;
    }

    double at(std::size_t v, std::size_t lane) const {
        return data_.at(v * lanes_ + lane);
    }
    void set(std::size_t v, std::size_t lane, double value) {
        data_.at(v * lanes_ + lane) = value;
    }

    /// Copy one scalar state vector into lane `lane`.
    void set_lane(std::size_t lane, std::span<const double> x);

    /// Extract lane `lane` as a scalar state vector.
    std::vector<double> lane_state(std::size_t lane) const;

private:
    std::size_t vars_ = 0;
    std::size_t lanes_ = 0;
    std::vector<double> data_;
};

/// B independent instances of one analogue structure, evaluated in
/// lockstep. Implementations may hold per-lane mutable inputs (load
/// conductances, actuator positions) adjusted by digital processes between
/// integration sweeps.
class batch_analog_system {
public:
    virtual ~batch_analog_system() = default;

    /// Number of continuous state variables (identical across lanes).
    virtual std::size_t state_size() const = 0;

    /// Number of lanes B.
    virtual std::size_t lanes() const = 0;

    /// Evaluate dx/dt for every lane, at per-lane times t[lane]. Lanes with
    /// active[lane] == 0 may be computed anyway (branch-free full-width
    /// kernels are encouraged); the integrator ignores their results.
    virtual void derivatives(std::span<const double> t, const batch_state& x,
                             batch_state& dxdt,
                             std::span<const std::uint8_t> active) const = 0;
};

/// Per-lane outcome of one step sweep.
enum class lane_step : std::uint8_t {
    idle = 0,   ///< lane was not attempted (already at its target, or failed)
    advanced,   ///< step accepted; t[lane] moved forward
    rejected,   ///< error too large; dt shrunk, lane will retry next sweep
    failed,     ///< dt underflowed min_dt or max_steps exhausted
};

/// Adaptive Cash–Karp RK45 over B lanes with masked per-lane step control.
///
/// One `step_once` call performs a single step *attempt* for every active
/// lane (t[lane] < target[lane]): six stage evaluations batched across
/// lanes, then a per-lane accept/reject. The caller (batch_simulator)
/// loops sweeps, snapping lanes that arrive at their targets and firing
/// their digital events. Per-lane dt hints persist across segments exactly
/// like the scalar integrator's dt_hint_.
class batch_rk45_integrator {
public:
    batch_rk45_integrator(std::size_t vars, std::size_t lanes,
                          ode_options options = {});

    const ode_options& options() const noexcept { return opt_; }
    ode_options& options() noexcept { return opt_; }

    /// One masked step attempt. For each lane l with t[l] < target[l] (and
    /// not previously failed): attempt one RK45 step of size
    /// min(dt_hint, max_dt, target[l] - t[l]); on accept advance t[l] and
    /// x lane l, on reject shrink dt. outcome[l] reports what happened;
    /// lanes at/past their target get lane_step::idle. Returns the number
    /// of lanes attempted.
    std::size_t step_once(const batch_analog_system& sys, std::span<double> t,
                          std::span<const double> target, batch_state& x,
                          std::span<lane_step> outcome);

    /// Reset lane l's per-segment step budget (max_steps is per segment
    /// between digital events, mirroring one scalar integrate() call).
    void start_segment(std::size_t lane) { segment_attempts_[lane] = 0; }

    /// Cumulative accepted / rejected steps for lane l.
    std::size_t steps_taken(std::size_t lane) const {
        return steps_taken_[lane];
    }
    std::size_t steps_rejected(std::size_t lane) const {
        return steps_rejected_[lane];
    }

    /// Final per-lane step size (resume hint), mirroring ode_status::last_dt.
    double last_dt(std::size_t lane) const { return dt_hint_[lane]; }

private:
    std::size_t vars_;
    std::size_t lanes_;
    ode_options opt_;

    std::vector<double> dt_hint_;    ///< carried across segments; 0 = unset
    std::vector<double> dt_try_;     ///< this sweep's per-lane trial step
    std::vector<double> stage_t_;    ///< per-lane stage times
    std::vector<double> err_;        ///< per-lane max error ratio
    std::vector<std::uint8_t> attempt_;  ///< per-lane "in this sweep" mask
    std::vector<std::uint8_t> failed_;   ///< per-lane sticky failure flag
    std::vector<std::size_t> segment_attempts_;
    std::vector<std::size_t> steps_taken_;
    std::vector<std::size_t> steps_rejected_;

    batch_state k1_, k2_, k3_, k4_, k5_, k6_, xtmp_, x5_;
};

}  // namespace ehdse::sim
