// Mixed-signal simulation coordinator — the ehdse stand-in for the
// SystemC-A kernel used in the paper.
//
// Operation mirrors an analogue/digital lock-step HDL kernel:
//   1. find the earliest pending digital event at time te,
//   2. advance the analogue ODE state from `now` to te,
//   3. fire every event scheduled at te (FIFO order); events may read the
//      analogue state, modify it (e.g. withdraw a packet's worth of charge
//      from the supercapacitor) and change analogue inputs (e.g. load
//      conductances) that the next integration segment will see,
//   4. repeat until the horizon.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "sim/context.hpp"
#include "sim/event_queue.hpp"
#include "sim/ode.hpp"

namespace ehdse::obs {
class counter;
}

namespace ehdse::sim {

/// Drives one analog_system plus an event queue over simulated time.
class simulator final : public sim_context {
public:
    /// The analog system must outlive the simulator.
    simulator(analog_system& sys, std::vector<double> initial_state,
              ode_options options = {});

    /// Current simulation time in seconds.
    double now() const noexcept override { return now_; }

    /// Read-only view of the analogue state vector.
    std::span<const double> state() const noexcept { return state_; }

    /// Read one analogue state variable.
    double state_at(std::size_t i) const override { return state_.at(i); }

    /// Overwrite one analogue state variable (discrete perturbation by a
    /// digital process, e.g. an instantaneous charge withdrawal).
    void set_state(std::size_t i, double value) override { state_.at(i) = value; }

    /// Schedule `action` at absolute time t (must be >= now; throws otherwise).
    event_id at(double t, std::function<void()> action) override;

    /// Schedule `action` after `delay` seconds (delay must be >= 0).
    event_id after(double delay, std::function<void()> action) override;

    /// Cancel a pending event.
    bool cancel(event_id id) override { return queue_.cancel(id); }

    /// Register an observer invoked after every accepted integration step and
    /// after every event batch, with (time, state) — used for tracing.
    void add_step_observer(std::function<void(double, std::span<const double>)> obs);

    /// Advance simulation until `t_end`, executing all due events.
    /// Returns false if the analogue integrator failed (status reported by
    /// last_ode_status()) or any state variable became non-finite — a
    /// corrupted state (e.g. an injected NaN) fails the run immediately
    /// rather than stalling the error-controlled integrator.
    bool run_until(double t_end);

    /// True while every analogue state variable is finite.
    bool state_finite() const noexcept;

    const ode_status& last_ode_status() const noexcept { return last_status_; }

    /// Cumulative accepted integration steps across all segments.
    std::size_t total_steps() const noexcept { return total_steps_; }

    /// Cumulative rejected (error-controlled retry) steps across all segments.
    std::size_t total_rejected_steps() const noexcept { return total_rejected_; }

    /// Cumulative executed events.
    std::uint64_t total_events() const noexcept { return queue_.executed_count(); }

    /// Access integrator options (e.g. to cap max_dt at a fraction of the
    /// vibration period before running).
    ode_options& options() noexcept { return integrator_.options(); }

    event_queue& queue() noexcept { return queue_; }

private:
    void notify_observers(double t);
    bool integrate_to(double t_target);
    void flush_event_count();

    analog_system& sys_;
    std::vector<double> state_;
    rk45_integrator integrator_;
    event_queue queue_;
    std::vector<std::function<void(double, std::span<const double>)>> observers_;
    double now_ = 0.0;
    ode_status last_status_;
    std::size_t total_steps_ = 0;
    std::size_t total_rejected_ = 0;
    // Process-wide metrics sink, resolved once at construction (nullptr =
    // observability off). Updated per integration segment / run, never per
    // step, so an attached sink stays off the integrator's hot path.
    obs::counter* steps_counter_ = nullptr;
    obs::counter* rejected_counter_ = nullptr;
    obs::counter* events_counter_ = nullptr;
    std::uint64_t flushed_events_ = 0;
};

/// Base class for digital processes (microcontroller, sensor node, ...).
///
/// A process owns at most one pending wake-up; calling wake_after/wake_at
/// cancels any previous pending wake-up, which keeps the "reschedule on
/// state change" idiom (Table II's voltage-banded transmission policy) safe.
class process {
public:
    explicit process(sim_context& sim) : sim_(sim) {}
    virtual ~process();

    process(const process&) = delete;
    process& operator=(const process&) = delete;

protected:
    sim_context& sim() noexcept { return sim_; }
    const sim_context& sim() const noexcept { return sim_; }

    /// Schedule activate() after `delay` seconds, replacing any pending wake.
    void wake_after(double delay);

    /// Schedule activate() at absolute time t, replacing any pending wake.
    void wake_at(double t);

    /// Cancel the pending wake-up, if any.
    void cancel_wake();

    /// True when a wake-up is pending.
    bool wake_pending() const noexcept { return pending_ != 0; }

    /// Called by the kernel at the scheduled time.
    virtual void activate() = 0;

private:
    sim_context& sim_;
    event_id pending_ = 0;
};

}  // namespace ehdse::sim
