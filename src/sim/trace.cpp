#include "sim/trace.hpp"

#include <algorithm>
#include <stdexcept>

namespace ehdse::sim {

void trace::record(double t, double value) {
    if (!times_.empty()) {
        const double last_t = times_.back();
        if (t == last_t) {
            values_.back() = value;  // same-time update replaces
            return;
        }
        if (t < last_t)
            throw std::invalid_argument("trace::record: time went backwards in '" +
                                        name_ + "'");
        if (t - last_t < min_interval_) return;
    }
    times_.push_back(t);
    values_.push_back(value);
}

double trace::sample(double t) const {
    if (times_.empty()) throw std::logic_error("trace::sample on empty trace");
    if (t <= times_.front()) return values_.front();
    if (t >= times_.back()) return values_.back();
    const auto it = std::lower_bound(times_.begin(), times_.end(), t);
    const auto hi = static_cast<std::size_t>(it - times_.begin());
    const std::size_t lo = hi - 1;
    const double span_t = times_[hi] - times_[lo];
    const double frac = span_t > 0.0 ? (t - times_[lo]) / span_t : 0.0;
    return values_[lo] + frac * (values_[hi] - values_[lo]);
}

double trace::min_value() const {
    if (values_.empty()) throw std::logic_error("trace::min_value on empty trace");
    return *std::min_element(values_.begin(), values_.end());
}

double trace::max_value() const {
    if (values_.empty()) throw std::logic_error("trace::max_value on empty trace");
    return *std::max_element(values_.begin(), values_.end());
}

double trace::last_value() const {
    if (values_.empty()) throw std::logic_error("trace::last_value on empty trace");
    return values_.back();
}

void trace::clear() {
    times_.clear();
    values_.clear();
}

void trace::write_csv(std::ostream& os) const {
    os << "time," << name_ << '\n';
    for (std::size_t i = 0; i < times_.size(); ++i)
        os << times_[i] << ',' << values_[i] << '\n';
}

}  // namespace ehdse::sim
