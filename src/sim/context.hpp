// The scheduling/state surface a digital process sees from its host kernel.
//
// Digital processes (sensor node, tuning controller, fault injectors) only
// ever need five things from the kernel: the clock, read/write access to
// individual analogue state variables, and event (un)scheduling. Factoring
// that surface out of `simulator` lets the same process classes run
// unmodified on either the scalar kernel (one `simulator` per design point)
// or one lane of the batch kernel (`batch_simulator`), which hosts B design
// points behind B of these contexts.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/event_queue.hpp"

namespace ehdse::sim {

/// Abstract per-lane kernel handle: simulated time, analogue state access,
/// and event scheduling. Implemented by `simulator` (the scalar kernel is
/// its own single lane) and by `batch_simulator`'s lane handles.
class sim_context {
public:
    virtual ~sim_context() = default;

    /// Current simulation time in seconds.
    virtual double now() const = 0;

    /// Read one analogue state variable.
    virtual double state_at(std::size_t i) const = 0;

    /// Overwrite one analogue state variable (discrete perturbation by a
    /// digital process, e.g. an instantaneous charge withdrawal).
    virtual void set_state(std::size_t i, double value) = 0;

    /// Schedule `action` at absolute time t (must be >= now; throws otherwise).
    virtual event_id at(double t, std::function<void()> action) = 0;

    /// Schedule `action` after `delay` seconds (delay must be >= 0).
    virtual event_id after(double delay, std::function<void()> action) = 0;

    /// Cancel a pending event.
    virtual bool cancel(event_id id) = 0;
};

}  // namespace ehdse::sim
