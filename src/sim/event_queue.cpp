#include "sim/event_queue.hpp"

#include <stdexcept>

namespace ehdse::sim {

event_id event_queue::schedule(double t, std::function<void()> action) {
    const event_id id = next_id_++;
    heap_.push(entry{t, next_seq_++, id, std::move(action)});
    pending_.insert(id);
    ++live_count_;
    return id;
}

bool event_queue::cancel(event_id id) {
    if (pending_.erase(id) == 0) return false;  // fired, cancelled, or unknown
    --live_count_;
    return true;
}

void event_queue::drop_cancelled() const {
    // Entries whose id is no longer pending were cancelled; discard them so
    // top() always refers to a live event.
    while (!heap_.empty() && !pending_.contains(heap_.top().id)) heap_.pop();
}

double event_queue::next_time() const {
    drop_cancelled();
    if (heap_.empty()) throw std::logic_error("event_queue::next_time on empty queue");
    return heap_.top().time;
}

double event_queue::pop_and_run() {
    drop_cancelled();
    if (heap_.empty()) throw std::logic_error("event_queue::pop_and_run on empty queue");
    // Move the action out before popping; running it may schedule new events.
    entry e = std::move(const_cast<entry&>(heap_.top()));
    heap_.pop();
    pending_.erase(e.id);
    --live_count_;
    ++executed_;
    if (e.action) e.action();
    return e.time;
}

}  // namespace ehdse::sim
