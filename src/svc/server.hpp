// ehdsed's engine: one process serving many concurrent experiment clients
// (docs/service.md, docs/architecture.md §8). The shape follows realtime
// multi-client servers such as rt-fsm's FSMServer — one acceptor, one
// blocking reader thread per connection, shared state behind fine-grained
// locks — with the compute fanned out onto the repo's shared
// exec::thread_pool instead of per-request threads:
//
//   listener(s) -> per-connection reader -> request_queue -> runner tasks
//        (unix/tcp)    (framing+protocol)    (admission,      (exec pool,
//                                             quotas,          shared
//                                             cancellation)    cached_evaluator)
//
// Cross-request caching: evaluations are keyed by the spec layer. The
// server keeps one dse::cached_evaluator per distinct canonical scenario
// (LRU-bounded registry; most fleets share one scenario, so in practice
// this is ONE cache) and routes both `simulate` requests and every
// evaluation inside a `flow` request through it — two clients submitting
// the same canonical spec cost one simulation (dse.cache.* shows the
// hit). Lifecycle: start() binds and spawns, drain() stops admissions
// and completes all accepted work (the SIGTERM path), stop() cancels
// queued work first. Metrics land under svc.* when a global registry is
// installed before construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dse/cached_evaluator.hpp"
#include "svc/protocol.hpp"
#include "svc/request_queue.hpp"
#include "svc/socket.hpp"

namespace ehdse::obs {
class counter;
class gauge;
class histogram;
}  // namespace ehdse::obs

namespace ehdse::exec {
class thread_pool;
}  // namespace ehdse::exec

namespace ehdse::svc {

struct server_config {
    /// Unix-domain listener path; empty = no unix listener.
    std::string unix_path;
    /// TCP listener; port < 0 = no TCP listener, 0 = ephemeral (resolved
    /// port via server::tcp_port()).
    std::string tcp_host = "127.0.0.1";
    int tcp_port = -1;
    /// Workers in the shared exec pool (0 = one per hardware thread).
    std::size_t jobs = 0;
    /// Admission control (queue depth, per-connection quota).
    queue_limits limits{};
    /// Capacity of each scenario's shared evaluation cache.
    std::size_t cache_capacity = 512;
    /// Distinct canonical scenarios kept warm (LRU beyond this).
    std::size_t max_evaluators = 16;
    /// Name echoed in pong frames and per-request manifests.
    std::string name = "ehdsed";
};

/// Point-in-time totals, independent of any metrics registry (the stats
/// frame serialises exactly this).
struct server_stats {
    std::uint64_t connections = 0;       ///< lifetime accepted connections
    std::size_t active_connections = 0;
    std::uint64_t accepted = 0;          ///< admitted submits
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;         ///< ok results delivered
    std::uint64_t failed = 0;            ///< failed results delivered
    std::uint64_t cancelled = 0;         ///< cancelled before starting
    std::size_t queued = 0;
    std::size_t running = 0;
    std::size_t evaluators = 0;          ///< live scenario caches
    /// Aggregated over every scenario cache, evicted ones included.
    dse::cached_evaluator::cache_stats cache;
};

class server {
public:
    /// Builds the shared pool; resolves svc.* instruments when a global
    /// metrics registry is installed (install it BEFORE constructing).
    explicit server(server_config config);

    /// stop()s if still running.
    ~server();

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Bind every configured listener and spawn the acceptor. Throws
    /// std::runtime_error (errno text) on bind failure, std::logic_error
    /// when no listener is configured or start() already ran.
    void start();

    /// Graceful shutdown: stop accepting connections and submits, let
    /// every accepted request reach its terminal frame, send goodbye,
    /// close. Blocks until complete. Idempotent.
    void drain();

    /// Fast shutdown: like drain() but queued-not-started requests are
    /// cancelled (clients get `cancelled` frames) instead of executed.
    /// Blocks until running requests finish. Idempotent.
    void stop();

    bool draining() const noexcept { return queue_.draining(); }

    /// Resolved TCP port (meaningful after start() with tcp_port >= 0).
    int tcp_port() const noexcept { return tcp_port_; }
    const std::string& unix_path() const noexcept { return config_.unix_path; }

    server_stats stats() const;

private:
    struct connection;
    struct eval_entry;

    void accept_loop();
    void serve_connection(std::shared_ptr<connection> conn);
    void handle_frame(const std::shared_ptr<connection>& conn,
                      const std::string& frame);
    void handle_submit(const std::shared_ptr<connection>& conn,
                       client_request&& request);
    void handle_cancel(const std::shared_ptr<connection>& conn,
                       const std::string& id);
    void execute(const std::shared_ptr<connection>& conn,
                 const std::string& id, workload work,
                 const spec::experiment_spec& canon);
    void schedule_runner();
    void runner_loop();
    /// Shared per-(scenario, harvester) evaluator+cache, created on first
    /// use — the harvester backend is part of the physics, so two specs
    /// differing only in harvester never share simulations.
    std::shared_ptr<eval_entry> evaluator_for(const spec::scenario& canon,
                                              const spec::harvester_spec& harv);
    void shutdown_connections(bool send_goodbye);

    server_config config_;
    int tcp_port_ = -1;

    request_queue queue_;

    socket_fd unix_listener_;
    socket_fd tcp_listener_;
    socket_fd wake_read_;   ///< self-pipe: written to interrupt accept poll
    socket_fd wake_write_;
    std::thread acceptor_;
    std::mutex lifecycle_mutex_;  ///< serialises start/drain/stop
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shut_down_{false};
    bool stop_requested_ = false;  ///< guarded by lifecycle_mutex_

    mutable std::mutex connections_mutex_;
    std::vector<std::shared_ptr<connection>> connections_;
    std::vector<std::thread> readers_;
    std::uint64_t next_connection_id_ = 1;

    mutable std::mutex runner_mutex_;
    std::size_t active_runners_ = 0;
    std::size_t max_runners_ = 1;

    mutable std::mutex evaluators_mutex_;
    std::vector<std::shared_ptr<eval_entry>> evaluators_;  ///< MRU first
    /// Cache totals of evicted scenario entries, so stats stay monotone.
    dse::cached_evaluator::cache_stats retired_cache_;

    std::atomic<std::uint64_t> connections_total_{0};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> cancelled_{0};

    // Cached instruments; all nullptr when no registry was installed.
    obs::counter* connections_counter_ = nullptr;
    obs::counter* accepted_counter_ = nullptr;
    obs::counter* rejected_counter_ = nullptr;
    obs::counter* completed_counter_ = nullptr;
    obs::counter* failed_counter_ = nullptr;
    obs::counter* cancelled_counter_ = nullptr;
    obs::counter* bad_frames_counter_ = nullptr;
    obs::gauge* active_gauge_ = nullptr;
    obs::gauge* queue_gauge_ = nullptr;
    obs::gauge* in_flight_gauge_ = nullptr;
    obs::gauge* evaluators_gauge_ = nullptr;
    obs::histogram* request_hist_ = nullptr;

    /// Declared LAST so it is destroyed FIRST: the pool's destructor
    /// joins any still-exiting runner task before the queue, the
    /// evaluator registry, or the counters it references go away.
    std::unique_ptr<exec::thread_pool> pool_;
};

}  // namespace ehdse::svc
