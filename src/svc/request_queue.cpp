#include "svc/request_queue.hpp"

#include <algorithm>
#include <vector>

namespace ehdse::svc {

request_queue::request_queue(queue_limits limits) : limits_(limits) {}

request_queue::admit request_queue::enqueue(job j, std::size_t* queue_depth) {
    std::lock_guard lock(mutex_);
    if (draining_) return admit::draining;
    auto& client = clients_[j.client];
    if (client.live.count(j.id)) return admit::duplicate_id;
    if (client.live.size() >= limits_.max_per_client)
        return admit::quota_exceeded;
    if (pending_.size() >= limits_.max_queued) return admit::queue_full;
    client.live.insert(j.id);
    pending_.push_back(std::move(j));
    if (queue_depth) *queue_depth = pending_.size();
    return admit::accepted;
}

request_queue::cancel_outcome request_queue::cancel(std::uint64_t client,
                                                    const std::string& id) {
    job removed;
    {
        std::lock_guard lock(mutex_);
        const auto client_it = clients_.find(client);
        if (client_it == clients_.end() || !client_it->second.live.count(id))
            return cancel_outcome::not_found;
        const auto it = std::find_if(
            pending_.begin(), pending_.end(), [&](const job& j) {
                return j.client == client && j.id == id;
            });
        if (it == pending_.end()) return cancel_outcome::running;
        removed = std::move(*it);
        pending_.erase(it);
        release_locked(client, id);
    }
    if (removed.cancelled) removed.cancelled(true);
    return cancel_outcome::cancelled;
}

std::size_t request_queue::cancel_all() {
    std::deque<job> removed;
    {
        std::lock_guard lock(mutex_);
        removed.swap(pending_);
        for (const job& j : removed) release_locked(j.client, j.id);
    }
    for (job& j : removed)
        if (j.cancelled) j.cancelled(true);
    idle_.notify_all();
    return removed.size();
}

std::size_t request_queue::drop_client(std::uint64_t client) {
    std::vector<job> removed;
    {
        std::lock_guard lock(mutex_);
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->client == client) {
                removed.push_back(std::move(*it));
                it = pending_.erase(it);
            } else {
                ++it;
            }
        }
        for (const job& j : removed) release_locked(client, j.id);
    }
    for (job& j : removed)
        if (j.cancelled) j.cancelled(false);
    idle_.notify_all();
    return removed.size();
}

std::optional<request_queue::job> request_queue::pop() {
    std::lock_guard lock(mutex_);
    if (pending_.empty()) return std::nullopt;
    job j = std::move(pending_.front());
    pending_.pop_front();
    ++running_;
    return j;
}

void request_queue::finish(std::uint64_t client, const std::string& id) {
    {
        std::lock_guard lock(mutex_);
        release_locked(client, id);
        if (running_ > 0) --running_;
    }
    idle_.notify_all();
}

void request_queue::begin_drain() {
    std::lock_guard lock(mutex_);
    draining_ = true;
}

bool request_queue::draining() const {
    std::lock_guard lock(mutex_);
    return draining_;
}

void request_queue::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return pending_.empty() && running_ == 0; });
}

std::size_t request_queue::queued() const {
    std::lock_guard lock(mutex_);
    return pending_.size();
}

std::size_t request_queue::running() const {
    std::lock_guard lock(mutex_);
    return running_;
}

void request_queue::release_locked(std::uint64_t client,
                                   const std::string& id) {
    const auto it = clients_.find(client);
    if (it == clients_.end()) return;
    it->second.live.erase(id);
    if (it->second.live.empty()) clients_.erase(it);
}

}  // namespace ehdse::svc
