// Frame layer of the ehdse.svc/1 wire protocol (docs/service.md §Framing):
// one frame = one complete JSON document on one line, terminated by '\n'.
// The compact JSON serialiser never emits a raw newline (strings are
// escaped), so the mapping is exact in both directions, and a session is
// inspectable with nothing fancier than `nc -U` and `jq`.
//
// frame_splitter is the incremental decoder: feed it whatever the socket
// delivered, pull complete frames out. It is transport-agnostic and
// allocation-bounded — a line that exceeds the frame limit without a
// terminator poisons the splitter (resynchronisation inside a giant frame
// is guesswork; the server responds `frame_too_large` and closes instead).
// Blank lines are tolerated as keep-alive padding; a trailing '\r' is
// stripped so `nc -C` style clients work.
#pragma once

#include <cstddef>
#include <string>

namespace ehdse::svc {

/// Upper bound on one frame (terminator included). A canonical
/// experiment-spec document is ~2 KB; 1 MiB leaves two orders of
/// magnitude for embedded manifests while still bounding a hostile
/// client's buffer to something harmless.
inline constexpr std::size_t k_max_frame_bytes = 1u << 20;

class frame_splitter {
public:
    explicit frame_splitter(std::size_t max_frame = k_max_frame_bytes)
        : max_frame_(max_frame) {}

    enum class status {
        frame,      ///< `out` holds one complete frame (newline stripped)
        need_more,  ///< no complete frame buffered yet
        overflow,   ///< frame limit exceeded before a terminator; poisoned
    };

    /// Append raw bytes from the transport.
    void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

    /// Extract the next complete frame into `out`. Empty lines are
    /// skipped. Once poisoned, always returns overflow.
    status next(std::string& out);

    /// True after an overflow: byte-stream framing is lost for good.
    bool poisoned() const noexcept { return poisoned_; }

    std::size_t buffered() const noexcept { return buffer_.size(); }

private:
    std::string buffer_;
    std::size_t max_frame_;
    bool poisoned_ = false;
};

}  // namespace ehdse::svc
