#include "svc/protocol.hpp"

#include <utility>

#include "spec/json_codec.hpp"

namespace ehdse::svc {

namespace {

/// Member lookup with a typed failure instead of std::out_of_range, so
/// a malformed frame reports the missing field, not a stack trace.
const obs::json_value& require(const obs::json_value& doc,
                               std::string_view key) {
    const obs::json_value* member = doc.find(key);
    if (!member)
        throw protocol_error(error_code::bad_type,
                             "missing field '" + std::string(key) + "'");
    return *member;
}

std::string require_string(const obs::json_value& doc, std::string_view key) {
    const obs::json_value& member = require(doc, key);
    if (!member.is_string())
        throw protocol_error(error_code::bad_type,
                             "field '" + std::string(key) +
                                 "' must be a string");
    return member.as_string();
}

std::string require_id(const obs::json_value& doc) {
    std::string id = require_string(doc, "id");
    if (id.empty())
        throw protocol_error(error_code::bad_type, "field 'id' must be non-empty");
    if (id.size() > k_max_request_id)
        throw protocol_error(error_code::bad_type,
                             "field 'id' exceeds " +
                                 std::to_string(k_max_request_id) + " bytes");
    return id;
}

spec::experiment_spec decode_spec(const obs::json_value& doc) {
    const obs::json_value& spec_doc = require(doc, "spec");
    if (!spec_doc.is_object())
        throw protocol_error(error_code::bad_type,
                             "field 'spec' must be an object");
    // Distinguish "a schema this server does not speak" from "a document
    // this server cannot decode": clients probing a newer spec layout get
    // bad_schema and can downgrade; everything else is bad_spec.
    const obs::json_value* schema = spec_doc.find("schema");
    if (schema && schema->is_string() &&
        schema->as_string() != spec::k_spec_schema &&
        schema->as_string() != spec::k_spec_schema_legacy)
        throw protocol_error(error_code::bad_schema,
                             "unknown spec schema '" + schema->as_string() +
                                 "' (this server speaks " +
                                 spec::k_spec_schema + " and " +
                                 spec::k_spec_schema_legacy + ")");
    try {
        return spec::spec_from_json(spec_doc);
    } catch (const std::exception& e) {
        throw protocol_error(error_code::bad_spec, e.what());
    }
}

obs::json_value make_typed(const char* type) {
    obs::json_object doc;
    doc.emplace_back("type", obs::json_value(type));
    return obs::json_value(std::move(doc));
}

}  // namespace

std::string to_string(error_code code) {
    switch (code) {
        case error_code::bad_frame: return "bad_frame";
        case error_code::frame_too_large: return "frame_too_large";
        case error_code::bad_type: return "bad_type";
        case error_code::bad_schema: return "bad_schema";
        case error_code::bad_spec: return "bad_spec";
        case error_code::duplicate_id: return "duplicate_id";
        case error_code::unknown_id: return "unknown_id";
        case error_code::too_late: return "too_late";
        case error_code::queue_full: return "queue_full";
        case error_code::quota_exceeded: return "quota_exceeded";
        case error_code::draining: return "draining";
        case error_code::internal: return "internal";
    }
    return "internal";
}

error_code error_code_from_string(std::string_view name) {
    for (const error_code code :
         {error_code::bad_frame, error_code::frame_too_large,
          error_code::bad_type, error_code::bad_schema, error_code::bad_spec,
          error_code::duplicate_id, error_code::unknown_id,
          error_code::too_late, error_code::queue_full,
          error_code::quota_exceeded, error_code::draining,
          error_code::internal}) {
        if (to_string(code) == name) return code;
    }
    throw std::invalid_argument("unknown error code '" + std::string(name) +
                                "'");
}

std::string to_string(workload work) {
    return work == workload::flow ? "flow" : "simulate";
}

workload workload_from_string(std::string_view name) {
    if (name == "simulate") return workload::simulate;
    if (name == "flow") return workload::flow;
    throw std::invalid_argument("unknown workload '" + std::string(name) +
                                "' (valid: simulate, flow)");
}

client_request parse_request(const obs::json_value& doc) {
    if (!doc.is_object())
        throw protocol_error(error_code::bad_frame,
                             "frame must be a JSON object");
    const std::string type = require_string(doc, "type");
    client_request request;
    if (type == "submit") {
        request.kind = request_kind::submit;
        request.id = require_id(doc);
        if (const obs::json_value* kind = doc.find("kind")) {
            if (!kind->is_string())
                throw protocol_error(error_code::bad_type,
                                     "field 'kind' must be a string");
            try {
                request.work = workload_from_string(kind->as_string());
            } catch (const std::invalid_argument& e) {
                throw protocol_error(error_code::bad_type, e.what());
            }
        }
        request.spec = decode_spec(doc);
        return request;
    }
    if (type == "cancel") {
        request.kind = request_kind::cancel;
        request.id = require_id(doc);
        return request;
    }
    if (type == "ping") {
        request.kind = request_kind::ping;
        return request;
    }
    if (type == "stats") {
        request.kind = request_kind::stats;
        return request;
    }
    throw protocol_error(error_code::bad_type,
                         "unknown message type '" + type + "'");
}

obs::json_value make_submit(const std::string& id, workload work,
                            const spec::experiment_spec& spec) {
    obs::json_value doc = make_typed("submit");
    doc.set("id", obs::json_value(id));
    doc.set("kind", obs::json_value(to_string(work)));
    doc.set("spec", spec::to_json(spec));
    return doc;
}

obs::json_value make_cancel(const std::string& id) {
    obs::json_value doc = make_typed("cancel");
    doc.set("id", obs::json_value(id));
    return doc;
}

obs::json_value make_ping() { return make_typed("ping"); }

obs::json_value make_stats_request() { return make_typed("stats"); }

obs::json_value make_accepted(const std::string& id,
                              const std::string& spec_hash,
                              std::size_t queue_depth) {
    obs::json_value doc = make_typed("accepted");
    doc.set("id", obs::json_value(id));
    doc.set("spec_hash", obs::json_value(spec_hash));
    doc.set("queue_depth", obs::json_value(queue_depth));
    return doc;
}

obs::json_value make_rejected(const std::string& id, error_code code,
                              const std::string& message) {
    obs::json_value doc = make_typed("rejected");
    doc.set("id", obs::json_value(id));
    doc.set("code", obs::json_value(to_string(code)));
    doc.set("message", obs::json_value(message));
    return doc;
}

obs::json_value make_event(const std::string& id, const std::string& event,
                           const std::string& detail) {
    obs::json_value doc = make_typed("event");
    doc.set("id", obs::json_value(id));
    doc.set("event", obs::json_value(event));
    doc.set("detail", obs::json_value(detail));
    return doc;
}

obs::json_value make_result(const std::string& id, bool ok,
                            obs::json_value response,
                            obs::json_value manifest) {
    obs::json_value doc = make_typed("result");
    doc.set("id", obs::json_value(id));
    doc.set("status", obs::json_value(ok ? "ok" : "failed"));
    doc.set("response", std::move(response));
    doc.set("manifest", std::move(manifest));
    return doc;
}

obs::json_value make_cancelled(const std::string& id) {
    obs::json_value doc = make_typed("cancelled");
    doc.set("id", obs::json_value(id));
    return doc;
}

obs::json_value make_error(error_code code, const std::string& message,
                           const std::string& id) {
    obs::json_value doc = make_typed("error");
    if (!id.empty()) doc.set("id", obs::json_value(id));
    doc.set("code", obs::json_value(to_string(code)));
    doc.set("message", obs::json_value(message));
    return doc;
}

obs::json_value make_pong(const std::string& server_name) {
    obs::json_value doc = make_typed("pong");
    doc.set("server", obs::json_value(server_name));
    doc.set("protocol", obs::json_value(k_protocol));
    return doc;
}

obs::json_value make_goodbye(const std::string& reason) {
    obs::json_value doc = make_typed("goodbye");
    doc.set("reason", obs::json_value(reason));
    return doc;
}

obs::json_value make_stats_reply(obs::json_value server_stats,
                                 obs::json_value cache_stats) {
    obs::json_value doc = make_typed("stats");
    doc.set("server", std::move(server_stats));
    doc.set("cache", std::move(cache_stats));
    return doc;
}

}  // namespace ehdse::svc
