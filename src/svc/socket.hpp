// Thin POSIX socket layer for the experiment service: RAII descriptor,
// unix-domain and TCP listeners/connectors, and the blocking helpers the
// server, the client tool, and the tests share. Everything here is
// deliberately synchronous — the service's concurrency lives in threads
// (one reader per connection, workers in the shared exec pool), not in an
// event loop, following the one-process-many-clients shape of realtime
// multi-client servers.
//
// All writes use MSG_NOSIGNAL so a client that vanished mid-stream
// surfaces as an error return, never as a process-killing SIGPIPE.
#pragma once

#include <cstddef>
#include <string>

namespace ehdse::svc {

/// Move-only owner of one file descriptor; closes on destruction.
class socket_fd {
public:
    socket_fd() = default;
    explicit socket_fd(int fd) noexcept : fd_(fd) {}
    ~socket_fd() { close(); }

    socket_fd(const socket_fd&) = delete;
    socket_fd& operator=(const socket_fd&) = delete;
    socket_fd(socket_fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    socket_fd& operator=(socket_fd&& other) noexcept;

    int get() const noexcept { return fd_; }
    bool valid() const noexcept { return fd_ >= 0; }
    int release() noexcept;

    /// ::shutdown(SHUT_RDWR) — wakes any thread blocked in recv on this
    /// descriptor (the server's way of interrupting reader threads).
    void shutdown_both() noexcept;
    void close() noexcept;

private:
    int fd_ = -1;
};

/// Bind + listen on a unix-domain socket. A stale socket file at `path`
/// is unlinked first (the daemon's previous incarnation may have died
/// without cleanup). Throws std::runtime_error with errno text.
socket_fd listen_unix(const std::string& path, int backlog = 64);

/// Bind + listen on host:port. Port 0 selects an ephemeral port; the
/// resolved port is written to *bound_port when non-null. Throws
/// std::runtime_error with errno text.
socket_fd listen_tcp(const std::string& host, int port, int* bound_port,
                     int backlog = 64);

socket_fd connect_unix(const std::string& path);
socket_fd connect_tcp(const std::string& host, int port);

/// Write all n bytes (MSG_NOSIGNAL, EINTR retried). False on any error.
bool send_all(int fd, const char* data, std::size_t n) noexcept;

/// recv up to n bytes: > 0 bytes read, 0 orderly EOF, < 0 error
/// (EINTR retried).
long recv_some(int fd, char* buf, std::size_t n) noexcept;

/// poll(POLLIN) with timeout; true = readable (or EOF/error pending),
/// false = timed out. timeout_ms < 0 waits forever.
bool wait_readable(int fd, int timeout_ms) noexcept;

}  // namespace ehdse::svc
