#include "svc/socket.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ehdse::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_unix_address(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::invalid_argument("unix socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/// getaddrinfo wrapper holding exactly one resolved IPv4/IPv6 address.
struct resolved_address {
    addrinfo* info = nullptr;
    ~resolved_address() {
        if (info) ::freeaddrinfo(info);
    }
};

resolved_address resolve(const std::string& host, int port, bool passive) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (passive) hints.ai_flags = AI_PASSIVE;
    resolved_address out;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                 service.c_str(), &hints, &out.info);
    if (rc != 0)
        throw std::runtime_error("cannot resolve '" + host +
                                 "': " + ::gai_strerror(rc));
    return out;
}

}  // namespace

socket_fd& socket_fd::operator=(socket_fd&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

int socket_fd::release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

void socket_fd::shutdown_both() noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void socket_fd::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

socket_fd listen_unix(const std::string& path, int backlog) {
    const sockaddr_un addr = make_unix_address(path);
    socket_fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket(AF_UNIX)");
    ::unlink(path.c_str());  // stale file from a previous incarnation
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
        throw_errno("bind '" + path + "'");
    if (::listen(fd.get(), backlog) != 0) throw_errno("listen '" + path + "'");
    return fd;
}

socket_fd listen_tcp(const std::string& host, int port, int* bound_port,
                     int backlog) {
    const resolved_address addr = resolve(host, port, /*passive=*/true);
    socket_fd fd;
    for (const addrinfo* ai = addr.info; ai; ai = ai->ai_next) {
        fd = socket_fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!fd.valid()) continue;
        const int one = 1;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) == 0) break;
        fd.close();
    }
    if (!fd.valid())
        throw_errno("bind " + host + ":" + std::to_string(port));
    if (::listen(fd.get(), backlog) != 0)
        throw_errno("listen " + host + ":" + std::to_string(port));
    if (bound_port) {
        sockaddr_storage bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                          &len) != 0)
            throw_errno("getsockname");
        if (bound.ss_family == AF_INET)
            *bound_port =
                ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);
        else
            *bound_port =
                ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port);
    }
    return fd;
}

socket_fd connect_unix(const std::string& path) {
    const sockaddr_un addr = make_unix_address(path);
    socket_fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket(AF_UNIX)");
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0)
        throw_errno("connect '" + path + "'");
    return fd;
}

socket_fd connect_tcp(const std::string& host, int port) {
    const resolved_address addr = resolve(host, port, /*passive=*/false);
    int last_errno = ECONNREFUSED;
    for (const addrinfo* ai = addr.info; ai; ai = ai->ai_next) {
        socket_fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!fd.valid()) continue;
        if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) == 0) return fd;
        last_errno = errno;
    }
    errno = last_errno;
    throw_errno("connect " + host + ":" + std::to_string(port));
}

bool send_all(int fd, const char* data, std::size_t n) noexcept {
    std::size_t sent = 0;
    while (sent < n) {
        const ssize_t rc =
            ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
        if (rc < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(rc);
    }
    return true;
}

long recv_some(int fd, char* buf, std::size_t n) noexcept {
    while (true) {
        const ssize_t rc = ::recv(fd, buf, n, 0);
        if (rc < 0 && errno == EINTR) continue;
        return static_cast<long>(rc);
    }
}

bool wait_readable(int fd, int timeout_ms) noexcept {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    while (true) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc < 0 && errno == EINTR) continue;
        return rc > 0;
    }
}

}  // namespace ehdse::svc
