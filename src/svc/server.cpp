#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "dse/rsm_flow.hpp"
#include "dse/system_evaluator.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/run_manifest.hpp"
#include "spec/json_codec.hpp"
#include "spec/spec_hash.hpp"
#include "svc/framing.hpp"

namespace ehdse::svc {

namespace {

/// Polymorphic shim routing every evaluation of a flow through an
/// externally shared cache — the mechanism behind cross-request and
/// cross-client cache hits (two clients running the same flow share one
/// set of simulations). system_evaluator documents exactly this
/// interposition point.
class forwarding_evaluator final : public dse::system_evaluator {
public:
    using eval_fn = std::function<dse::evaluation_result(
        const dse::system_config&, const dse::evaluation_options&)>;
    using batch_fn = std::function<std::vector<dse::evaluation_result>(
        std::span<const dse::system_config>, const dse::evaluation_options&)>;

    // Carries the harvester spec so spec_of() rebuilds the same canonical
    // spec (and spec_hash) the client submitted.
    forwarding_evaluator(dse::scenario scn, spec::harvester_spec harv,
                         eval_fn fn, batch_fn batch)
        : dse::system_evaluator(std::move(scn), std::move(harv)),
          fn_(std::move(fn)),
          batch_(std::move(batch)) {}

    dse::evaluation_result evaluate(
        const dse::system_config& config,
        const dse::evaluation_options& options) const override {
        return fn_(config, options);
    }

    // Batched requests forward too — the batch kernel never calls
    // evaluate(), so without this a flow's batches would silently skip the
    // shared cache.
    std::vector<dse::evaluation_result> evaluate_batch(
        std::span<const dse::system_config> configs,
        const dse::evaluation_options& options) const override {
        return batch_(configs, options);
    }

private:
    eval_fn fn_;
    batch_fn batch_;
};

obs::json_value simulate_response(const dse::evaluation_result& result) {
    obs::json_object doc;
    doc.emplace_back("transmissions", obs::json_value(result.transmissions));
    doc.emplace_back("low_band_transmissions",
                     obs::json_value(result.low_band_transmissions));
    doc.emplace_back("suppressed_wakeups",
                     obs::json_value(result.suppressed_wakeups));
    doc.emplace_back("final_voltage_v", obs::json_value(result.final_voltage_v));
    doc.emplace_back("harvested_energy_j",
                     obs::json_value(result.harvested_energy_j));
    doc.emplace_back("ode_steps", obs::json_value(result.ode_steps));
    doc.emplace_back("events", obs::json_value(result.events));
    doc.emplace_back("sim_ok", obs::json_value(result.sim_ok));
    return obs::json_value(std::move(doc));
}

obs::json_value config_json(const spec::system_config& config) {
    obs::json_object doc;
    doc.emplace_back("mcu_clock_hz", obs::json_value(config.mcu_clock_hz));
    doc.emplace_back("watchdog_period_s",
                     obs::json_value(config.watchdog_period_s));
    doc.emplace_back("tx_interval_s", obs::json_value(config.tx_interval_s));
    return obs::json_value(std::move(doc));
}

obs::json_value flow_response(const dse::flow_result& flow) {
    obs::json_object doc;
    doc.emplace_back("baseline_transmissions",
                     obs::json_value(flow.original_eval.transmissions));
    obs::json_array outcomes;
    for (const dse::optimizer_outcome& outcome : flow.outcomes) {
        obs::json_object row;
        row.emplace_back("name", obs::json_value(outcome.name));
        row.emplace_back("predicted", obs::json_value(outcome.predicted));
        row.emplace_back("validated",
                         obs::json_value(outcome.validated.transmissions));
        row.emplace_back("config", config_json(outcome.config));
        outcomes.push_back(obs::json_value(std::move(row)));
    }
    doc.emplace_back("outcomes", obs::json_value(std::move(outcomes)));
    return obs::json_value(std::move(doc));
}

obs::json_value cache_stats_json(const dse::cached_evaluator::cache_stats& s) {
    obs::json_object doc;
    doc.emplace_back("hits", obs::json_value(s.hits));
    doc.emplace_back("misses", obs::json_value(s.misses));
    doc.emplace_back("evictions", obs::json_value(s.evictions));
    doc.emplace_back("entries", obs::json_value(s.entries));
    doc.emplace_back("hit_rate", obs::json_value(s.hit_rate()));
    return obs::json_value(std::move(doc));
}

}  // namespace

/// One client connection. The write mutex serialises frames from the
/// reader thread and any runner streaming this connection's results; the
/// reader holds it across request_queue::enqueue() so `accepted` is on
/// the wire before any runner frame for the same request (enqueue never
/// invokes callbacks — see request_queue.hpp).
struct server::connection {
    std::uint64_t id = 0;
    socket_fd fd;
    std::mutex write_mutex;
    std::atomic<bool> alive{true};

    bool send(const obs::json_value& doc) {
        std::lock_guard lock(write_mutex);
        return send_locked(doc);
    }

    /// Caller holds write_mutex. Marks the connection dead on a short
    /// write so later senders stop immediately.
    bool send_locked(const obs::json_value& doc) {
        if (!alive.load(std::memory_order_relaxed)) return false;
        std::string line = doc.dump();
        line.push_back('\n');
        if (!send_all(fd.get(), line.data(), line.size())) {
            alive.store(false, std::memory_order_relaxed);
            return false;
        }
        return true;
    }
};

/// One canonical (scenario, harvester) pair's shared physics +
/// cross-request cache.
struct server::eval_entry {
    std::uint64_t key_hash = 0;  ///< mixed scenario + harvester hash
    spec::scenario scn;
    spec::harvester_spec harv;
    std::unique_ptr<dse::system_evaluator> evaluator;
    std::unique_ptr<dse::cached_evaluator> cache;
};

server::server(server_config config)
    : config_(std::move(config)), queue_(config_.limits) {
    if (obs::metrics_registry* registry = obs::global_registry()) {
        connections_counter_ = &registry->get_counter("svc.connections");
        accepted_counter_ = &registry->get_counter("svc.requests.accepted");
        rejected_counter_ = &registry->get_counter("svc.requests.rejected");
        completed_counter_ = &registry->get_counter("svc.requests.completed");
        failed_counter_ = &registry->get_counter("svc.requests.failed");
        cancelled_counter_ = &registry->get_counter("svc.requests.cancelled");
        bad_frames_counter_ = &registry->get_counter("svc.frames.bad");
        active_gauge_ = &registry->get_gauge("svc.connections.active");
        queue_gauge_ = &registry->get_gauge("svc.queue.depth");
        in_flight_gauge_ = &registry->get_gauge("svc.requests.in_flight");
        evaluators_gauge_ = &registry->get_gauge("svc.evaluators");
        request_hist_ = &registry->get_histogram("svc.request.seconds");
    }
    pool_ = std::make_unique<exec::thread_pool>(config_.jobs);
    max_runners_ = pool_->size();
}

server::~server() { stop(); }

void server::start() {
    std::lock_guard lifecycle(lifecycle_mutex_);
    if (started_.exchange(true))
        throw std::logic_error("svc::server::start: already started");
    if (config_.unix_path.empty() && config_.tcp_port < 0)
        throw std::logic_error("svc::server::start: no listener configured");

    if (!config_.unix_path.empty())
        unix_listener_ = listen_unix(config_.unix_path);
    if (config_.tcp_port >= 0)
        tcp_listener_ =
            listen_tcp(config_.tcp_host, config_.tcp_port, &tcp_port_);

    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) != 0)
        throw std::runtime_error(std::string("svc::server::start: pipe: ") +
                                 std::strerror(errno));
    wake_read_ = socket_fd(pipe_fds[0]);
    wake_write_ = socket_fd(pipe_fds[1]);

    acceptor_ = std::thread([this] { accept_loop(); });
}

void server::accept_loop() {
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd fds[3];
        nfds_t nfds = 0;
        const int wake_index = static_cast<int>(nfds);
        fds[nfds++] = {wake_read_.get(), POLLIN, 0};
        int unix_index = -1;
        if (unix_listener_.valid()) {
            unix_index = static_cast<int>(nfds);
            fds[nfds++] = {unix_listener_.get(), POLLIN, 0};
        }
        int tcp_index = -1;
        if (tcp_listener_.valid()) {
            tcp_index = static_cast<int>(nfds);
            fds[nfds++] = {tcp_listener_.get(), POLLIN, 0};
        }

        const int ready = ::poll(fds, nfds, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (fds[wake_index].revents != 0) break;

        for (const int index : {unix_index, tcp_index}) {
            if (index < 0 || (fds[index].revents & POLLIN) == 0) continue;
            const int raw = ::accept(fds[index].fd, nullptr, nullptr);
            if (raw < 0) continue;  // transient (EMFILE, ECONNABORTED, ...)

            auto conn = std::make_shared<connection>();
            conn->fd = socket_fd(raw);
            connections_total_.fetch_add(1, std::memory_order_relaxed);
            if (connections_counter_) connections_counter_->add();
            {
                std::lock_guard lock(connections_mutex_);
                conn->id = next_connection_id_++;
                connections_.push_back(conn);
                readers_.emplace_back(
                    [this, conn] { serve_connection(conn); });
                if (active_gauge_)
                    active_gauge_->set(
                        static_cast<double>(connections_.size()));
            }
        }
    }
}

void server::serve_connection(std::shared_ptr<connection> conn) {
    frame_splitter splitter;
    char buf[4096];
    bool closing = false;
    while (!closing) {
        const long n = recv_some(conn->fd.get(), buf, sizeof buf);
        if (n <= 0) break;
        splitter.feed(buf, static_cast<std::size_t>(n));
        std::string frame;
        for (;;) {
            const frame_splitter::status st = splitter.next(frame);
            if (st == frame_splitter::status::need_more) break;
            if (st == frame_splitter::status::overflow) {
                if (bad_frames_counter_) bad_frames_counter_->add();
                conn->send(make_error(
                    error_code::frame_too_large,
                    "frame exceeds " + std::to_string(k_max_frame_bytes) +
                        " bytes; closing connection"));
                closing = true;
                break;
            }
            handle_frame(conn, frame);
            if (!conn->alive.load(std::memory_order_relaxed)) {
                closing = true;
                break;
            }
        }
    }

    conn->alive.store(false, std::memory_order_relaxed);
    conn->fd.shutdown_both();
    // Sweep this client's queued-but-unstarted requests; running ones
    // finish normally and their frames die against the dead connection.
    const std::size_t swept = queue_.drop_client(conn->id);
    if (swept > 0) {
        cancelled_.fetch_add(swept, std::memory_order_relaxed);
        if (cancelled_counter_) cancelled_counter_->add(swept);
        if (queue_gauge_)
            queue_gauge_->set(static_cast<double>(queue_.queued()));
    }
    {
        std::lock_guard lock(connections_mutex_);
        for (auto it = connections_.begin(); it != connections_.end(); ++it) {
            if (it->get() == conn.get()) {
                connections_.erase(it);
                break;
            }
        }
        if (active_gauge_)
            active_gauge_->set(static_cast<double>(connections_.size()));
    }
}

void server::handle_frame(const std::shared_ptr<connection>& conn,
                          const std::string& frame) {
    obs::json_value doc;
    try {
        doc = obs::json_value::parse(frame);
    } catch (const std::exception& e) {
        if (bad_frames_counter_) bad_frames_counter_->add();
        conn->send(make_error(error_code::bad_frame, e.what()));
        return;  // framing is still intact — keep the connection
    }

    client_request request;
    try {
        request = parse_request(doc);
    } catch (const protocol_error& e) {
        if (bad_frames_counter_) bad_frames_counter_->add();
        // Echo the id when the frame carried one, so pipelined clients
        // can correlate; a rejected submit counts against svc.rejected.
        std::string id;
        if (const obs::json_value* member = doc.find("id");
            member && member->is_string() &&
            member->as_string().size() <= k_max_request_id)
            id = member->as_string();
        const obs::json_value* type = doc.find("type");
        if (type && type->is_string() && type->as_string() == "submit") {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            if (rejected_counter_) rejected_counter_->add();
            conn->send(make_rejected(id, e.code(), e.what()));
        } else {
            conn->send(make_error(e.code(), e.what(), id));
        }
        return;
    }

    switch (request.kind) {
        case request_kind::ping:
            conn->send(make_pong(config_.name));
            return;
        case request_kind::stats: {
            const server_stats totals = stats();
            obs::json_object server_doc;
            server_doc.emplace_back("connections",
                                    obs::json_value(totals.connections));
            server_doc.emplace_back(
                "active_connections",
                obs::json_value(totals.active_connections));
            server_doc.emplace_back("accepted",
                                    obs::json_value(totals.accepted));
            server_doc.emplace_back("rejected",
                                    obs::json_value(totals.rejected));
            server_doc.emplace_back("completed",
                                    obs::json_value(totals.completed));
            server_doc.emplace_back("failed", obs::json_value(totals.failed));
            server_doc.emplace_back("cancelled",
                                    obs::json_value(totals.cancelled));
            server_doc.emplace_back("queued", obs::json_value(totals.queued));
            server_doc.emplace_back("running",
                                    obs::json_value(totals.running));
            server_doc.emplace_back("evaluators",
                                    obs::json_value(totals.evaluators));
            conn->send(make_stats_reply(
                obs::json_value(std::move(server_doc)),
                cache_stats_json(totals.cache)));
            return;
        }
        case request_kind::cancel:
            handle_cancel(conn, request.id);
            return;
        case request_kind::submit:
            handle_submit(conn, std::move(request));
            return;
    }
}

void server::handle_submit(const std::shared_ptr<connection>& conn,
                           client_request&& request) {
    const spec::experiment_spec canon = request.spec.canonicalized();
    const std::string hash = spec::spec_hash_hex(spec::spec_hash(canon));
    const std::string id = request.id;
    const workload work = request.work;

    request_queue::job job;
    job.client = conn->id;
    job.id = id;
    job.run = [this, conn, id, work, canon] { execute(conn, id, work, canon); };
    job.cancelled = [this, conn, id](bool notify) {
        if (notify) conn->send(make_cancelled(id));
    };

    request_queue::admit admission;
    std::size_t depth = 0;
    {
        // Holding the write lock across enqueue() keeps `accepted` ahead
        // of any frame a runner sends for this request (the ordering
        // guarantee of docs/service.md). enqueue() never invokes
        // callbacks, so this cannot deadlock.
        std::lock_guard lock(conn->write_mutex);
        admission = queue_.enqueue(std::move(job), &depth);
        switch (admission) {
            case request_queue::admit::accepted:
                conn->send_locked(make_accepted(id, hash, depth));
                break;
            case request_queue::admit::queue_full:
                conn->send_locked(make_rejected(
                    id, error_code::queue_full,
                    "admission queue is at capacity (" +
                        std::to_string(config_.limits.max_queued) + ")"));
                break;
            case request_queue::admit::quota_exceeded:
                conn->send_locked(make_rejected(
                    id, error_code::quota_exceeded,
                    "connection quota of " +
                        std::to_string(config_.limits.max_per_client) +
                        " in-flight requests is spent"));
                break;
            case request_queue::admit::draining:
                conn->send_locked(make_rejected(
                    id, error_code::draining,
                    "server is draining; no new work accepted"));
                break;
            case request_queue::admit::duplicate_id:
                conn->send_locked(make_rejected(
                    id, error_code::duplicate_id,
                    "a request with id '" + id +
                        "' is already live on this connection"));
                break;
        }
    }

    if (admission == request_queue::admit::accepted) {
        accepted_.fetch_add(1, std::memory_order_relaxed);
        if (accepted_counter_) accepted_counter_->add();
        if (queue_gauge_) queue_gauge_->set(static_cast<double>(depth));
        schedule_runner();
    } else {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        if (rejected_counter_) rejected_counter_->add();
    }
}

void server::handle_cancel(const std::shared_ptr<connection>& conn,
                           const std::string& id) {
    // Called WITHOUT the connection write lock: a successful cancel
    // invokes the cancelled callback, which takes it to send the frame.
    switch (queue_.cancel(conn->id, id)) {
        case request_queue::cancel_outcome::cancelled:
            cancelled_.fetch_add(1, std::memory_order_relaxed);
            if (cancelled_counter_) cancelled_counter_->add();
            if (queue_gauge_)
                queue_gauge_->set(static_cast<double>(queue_.queued()));
            return;
        case request_queue::cancel_outcome::running:
            conn->send(make_error(error_code::too_late,
                                  "request '" + id +
                                      "' is already executing; it will "
                                      "run to completion",
                                  id));
            return;
        case request_queue::cancel_outcome::not_found:
            conn->send(make_error(error_code::unknown_id,
                                  "no live request with id '" + id +
                                      "' on this connection",
                                  id));
            return;
    }
}

void server::execute(const std::shared_ptr<connection>& conn,
                     const std::string& id, workload work,
                     const spec::experiment_spec& canon) {
    const auto start = std::chrono::steady_clock::now();
    conn->send(make_event(id, "started", to_string(work)));

    obs::run_manifest manifest;
    manifest.set_tool(config_.name + " " + to_string(work), "");
    manifest.set_option("request_id", obs::json_value(id));
    manifest.set_option("client", obs::json_value(conn->id));

    bool ok = false;
    obs::json_value response;
    try {
        const std::shared_ptr<eval_entry> entry =
            evaluator_for(canon.scn, canon.harv);
        if (work == workload::simulate) {
            manifest.set_option("spec", spec::to_json(canon));
            manifest.set_option(
                "spec_hash",
                obs::json_value(spec::spec_hash_hex(spec::spec_hash(canon))));
            const dse::evaluation_result result =
                entry->cache->evaluate(canon.config, canon.eval);
            obs::sim_run_record record;
            record.kind = "request";
            record.mcu_clock_hz = canon.config.mcu_clock_hz;
            record.watchdog_period_s = canon.config.watchdog_period_s;
            record.tx_interval_s = canon.config.tx_interval_s;
            record.seed = canon.eval.controller_seed;
            record.response = static_cast<double>(result.transmissions);
            record.wall_s = result.wall_time_s;
            record.ode_steps = result.ode_steps;
            record.ode_steps_rejected = result.ode_steps_rejected;
            record.events = result.events;
            record.sim_ok = result.sim_ok;
            manifest.add_sim_run(std::move(record));
            response = simulate_response(result);
            ok = result.sim_ok;
        } else {
            // Every evaluation inside the flow goes through the shared
            // scenario cache; the flow's own per-run cache stays off so
            // results are not double-stored.
            forwarding_evaluator evaluator(
                canon.scn, canon.harv,
                [entry](const dse::system_config& config,
                        const dse::evaluation_options& options) {
                    return entry->cache->evaluate(config, options);
                },
                [entry](std::span<const dse::system_config> configs,
                        const dse::evaluation_options& options) {
                    return entry->cache->evaluate_batch(configs, options);
                });
            dse::flow_options runtime;
            runtime.pool = pool_.get();
            runtime.manifest = &manifest;
            if (conn->alive.load(std::memory_order_relaxed))
                runtime.progress = [conn, id](const std::string& line) {
                    if (conn->alive.load(std::memory_order_relaxed))
                        conn->send(make_event(id, "progress", line));
                };
            dse::flow_options options =
                dse::flow_options_from_spec(canon, std::move(runtime));
            options.cache = false;
            const dse::flow_result flow =
                dse::run_rsm_flow(evaluator, options);
            // set_option appends and the reader sees the last value, so
            // re-stamping here overrides what the flow recorded with the
            // exact spec this request carried.
            manifest.set_option("spec", spec::to_json(canon));
            manifest.set_option(
                "spec_hash",
                obs::json_value(spec::spec_hash_hex(spec::spec_hash(canon))));
            response = flow_response(flow);
            ok = true;
        }
    } catch (const std::exception& e) {
        obs::json_object failure;
        failure.emplace_back("error", obs::json_value(e.what()));
        response = obs::json_value(std::move(failure));
        ok = false;
    }

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (request_hist_) request_hist_->observe(wall);
    if (ok) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (completed_counter_) completed_counter_->add();
    } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
        if (failed_counter_) failed_counter_->add();
    }
    conn->send(make_result(id, ok, std::move(response), manifest.to_json()));
}

void server::schedule_runner() {
    std::lock_guard lock(runner_mutex_);
    if (active_runners_ >= max_runners_) return;
    ++active_runners_;
    pool_->submit([this] { runner_loop(); });
}

void server::runner_loop() {
    for (;;) {
        std::optional<request_queue::job> job = queue_.pop();
        if (!job) break;
        if (queue_gauge_)
            queue_gauge_->set(static_cast<double>(queue_.queued()));
        if (in_flight_gauge_)
            in_flight_gauge_->set(static_cast<double>(queue_.running()));
        job->run();  // execute() catches; a runner never throws
        queue_.finish(job->client, job->id);
        if (in_flight_gauge_)
            in_flight_gauge_->set(static_cast<double>(queue_.running()));
    }
    std::lock_guard lock(runner_mutex_);
    --active_runners_;
    // A submit that raced this runner's exit saw active_runners_ at the
    // cap and skipped scheduling — respawn for it.
    if (queue_.queued() > 0 && active_runners_ < max_runners_) {
        ++active_runners_;
        pool_->submit([this] { runner_loop(); });
    }
}

std::shared_ptr<server::eval_entry> server::evaluator_for(
    const spec::scenario& canon, const spec::harvester_spec& harv) {
    // In-memory MRU key only — the structural equality below is
    // authoritative, the combined hash just prunes the scan.
    const std::uint64_t hash =
        spec::spec_hash(canon) ^ (spec::spec_hash(harv) << 1);
    std::lock_guard lock(evaluators_mutex_);
    for (auto it = evaluators_.begin(); it != evaluators_.end(); ++it) {
        if ((*it)->key_hash == hash && (*it)->scn == canon &&
            (*it)->harv == harv) {
            std::shared_ptr<eval_entry> entry = *it;
            evaluators_.erase(it);
            evaluators_.insert(evaluators_.begin(), entry);  // MRU front
            return entry;
        }
    }

    auto entry = std::make_shared<eval_entry>();
    entry->key_hash = hash;
    entry->scn = canon;
    entry->harv = harv;
    entry->evaluator = std::make_unique<dse::system_evaluator>(canon, harv);
    entry->cache = std::make_unique<dse::cached_evaluator>(
        *entry->evaluator, config_.cache_capacity);
    evaluators_.insert(evaluators_.begin(), entry);
    while (evaluators_.size() > config_.max_evaluators) {
        // Retire the coldest scenario. In-flight requests holding the
        // shared_ptr keep using it; its stats from here on are lost to
        // the aggregate, which only ever undercounts.
        const auto stats = evaluators_.back()->cache->stats();
        retired_cache_.hits += stats.hits;
        retired_cache_.misses += stats.misses;
        retired_cache_.evictions += stats.evictions;
        evaluators_.pop_back();
    }
    if (evaluators_gauge_)
        evaluators_gauge_->set(static_cast<double>(evaluators_.size()));
    return entry;
}

void server::shutdown_connections(bool send_goodbye) {
    std::vector<std::shared_ptr<connection>> snapshot;
    {
        std::lock_guard lock(connections_mutex_);
        snapshot = connections_;
    }
    for (const std::shared_ptr<connection>& conn : snapshot) {
        if (send_goodbye) conn->send(make_goodbye("shutting down"));
        conn->alive.store(false, std::memory_order_relaxed);
        conn->fd.shutdown_both();  // wakes the blocked reader
    }
}

void server::drain() {
    std::lock_guard lifecycle(lifecycle_mutex_);
    if (shut_down_.load() || !started_.load()) {
        shut_down_.store(true);
        return;
    }
    queue_.begin_drain();

    // Stop accepting: wake the acceptor, close the listeners.
    stopping_.store(true, std::memory_order_release);
    if (wake_write_.valid()) {
        const char byte = 'x';
        (void)!::write(wake_write_.get(), &byte, 1);
    }
    if (acceptor_.joinable()) acceptor_.join();
    unix_listener_.close();
    tcp_listener_.close();
    if (!config_.unix_path.empty()) ::unlink(config_.unix_path.c_str());

    if (stop_requested_) {
        const std::size_t swept = queue_.cancel_all();
        if (swept > 0) {
            cancelled_.fetch_add(swept, std::memory_order_relaxed);
            if (cancelled_counter_) cancelled_counter_->add(swept);
        }
    }

    // Every accepted request reaches its terminal frame before goodbye.
    schedule_runner();  // in case work is queued with no live runner
    queue_.wait_idle();

    shutdown_connections(true);
    std::vector<std::thread> readers;
    {
        std::lock_guard lock(connections_mutex_);
        readers.swap(readers_);
    }
    for (std::thread& reader : readers) reader.join();

    shut_down_.store(true);
}

void server::stop() {
    {
        std::lock_guard lifecycle(lifecycle_mutex_);
        stop_requested_ = true;
    }
    drain();
}

server_stats server::stats() const {
    server_stats totals;
    totals.connections = connections_total_.load(std::memory_order_relaxed);
    totals.accepted = accepted_.load(std::memory_order_relaxed);
    totals.rejected = rejected_.load(std::memory_order_relaxed);
    totals.completed = completed_.load(std::memory_order_relaxed);
    totals.failed = failed_.load(std::memory_order_relaxed);
    totals.cancelled = cancelled_.load(std::memory_order_relaxed);
    totals.queued = queue_.queued();
    totals.running = queue_.running();
    {
        std::lock_guard lock(connections_mutex_);
        totals.active_connections = connections_.size();
    }
    {
        std::lock_guard lock(evaluators_mutex_);
        totals.evaluators = evaluators_.size();
        totals.cache = retired_cache_;
        for (const std::shared_ptr<eval_entry>& entry : evaluators_) {
            const auto stats = entry->cache->stats();
            totals.cache.hits += stats.hits;
            totals.cache.misses += stats.misses;
            totals.cache.evictions += stats.evictions;
            totals.cache.entries += stats.entries;
        }
    }
    return totals;
}

}  // namespace ehdse::svc
