// Message layer of the ehdse.svc/1 wire protocol (docs/service.md): the
// typed request a client frame decodes to, the builders for every frame
// either side sends, and the closed error-code vocabulary. The payload of
// a submit IS the canonical experiment spec — the spec layer's strict
// JSON codec (src/spec/json_codec.hpp) does the heavy parsing, so the
// service adds connection/scheduling/lifecycle semantics, not a second
// serialisation format.
//
// Parsing is strict in the same spirit as the spec codec: an unknown
// message type, a missing/ill-typed field, an unknown spec schema or an
// invalid spec all throw protocol_error carrying one of the enumerated
// codes, which the server maps 1:1 onto `rejected` / `error` frames — a
// client can switch on `code` without parsing prose.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "spec/experiment_spec.hpp"

namespace ehdse::svc {

/// Protocol identifier, echoed in `pong` frames. Bumps only when a
/// frame's shape changes incompatibly; new spec schema versions ride on
/// the spec codec's own "schema" tag instead.
inline constexpr const char* k_protocol = "ehdse.svc/1";

/// Longest accepted client-chosen request id. Ids are opaque to the
/// server; the bound only keeps echo frames small.
inline constexpr std::size_t k_max_request_id = 128;

/// The closed vocabulary of `rejected.code` / `error.code` values
/// (docs/service.md §Error codes).
enum class error_code {
    bad_frame,        ///< frame is not a JSON object
    frame_too_large,  ///< frame limit exceeded; connection closes
    bad_type,         ///< unknown "type", or a missing/ill-typed field
    bad_schema,       ///< spec "schema" tag is not a version this server speaks
    bad_spec,         ///< spec failed strict decode or validate()
    duplicate_id,     ///< submit id collides with a live request on this connection
    unknown_id,       ///< cancel names no live request on this connection
    too_late,         ///< cancel arrived after execution started
    queue_full,       ///< global admission queue is at capacity
    quota_exceeded,   ///< this connection's in-flight quota is spent
    draining,         ///< server is draining; no new work accepted
    internal,         ///< unexpected server-side failure
};

std::string to_string(error_code code);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
error_code error_code_from_string(std::string_view name);

class protocol_error : public std::runtime_error {
public:
    protocol_error(error_code code, const std::string& message)
        : std::runtime_error(message), code_(code) {}

    error_code code() const noexcept { return code_; }

private:
    error_code code_;
};

enum class request_kind { submit, cancel, ping, stats };

/// What a submit asks the server to run with the spec.
enum class workload {
    simulate,  ///< one evaluation of spec.config (through the shared cache)
    flow,      ///< the full RSM pipeline the spec's flow part describes
};

std::string to_string(workload work);
workload workload_from_string(std::string_view name);

/// One decoded client frame.
struct client_request {
    request_kind kind = request_kind::ping;
    std::string id;                        ///< submit / cancel only
    workload work = workload::simulate;    ///< submit only
    spec::experiment_spec spec;            ///< submit only, validated
};

/// Decode one client frame (an already-parsed JSON document). Throws
/// protocol_error: bad_frame (not an object), bad_type (unknown type /
/// missing field), bad_schema (spec schema tag unknown), bad_spec (spec
/// fails the strict codec or validation).
client_request parse_request(const obs::json_value& doc);

// -- client -> server builders (ehdse_client, tests) ----------------------
obs::json_value make_submit(const std::string& id, workload work,
                            const spec::experiment_spec& spec);
obs::json_value make_cancel(const std::string& id);
obs::json_value make_ping();
obs::json_value make_stats_request();

// -- server -> client builders --------------------------------------------
obs::json_value make_accepted(const std::string& id,
                              const std::string& spec_hash,
                              std::size_t queue_depth);
obs::json_value make_rejected(const std::string& id, error_code code,
                              const std::string& message);
obs::json_value make_event(const std::string& id, const std::string& event,
                           const std::string& detail);
obs::json_value make_result(const std::string& id, bool ok,
                            obs::json_value response,
                            obs::json_value manifest);
obs::json_value make_cancelled(const std::string& id);
/// Connection- or request-scoped error; empty id = connection-scoped.
obs::json_value make_error(error_code code, const std::string& message,
                           const std::string& id = "");
obs::json_value make_pong(const std::string& server_name);
obs::json_value make_goodbye(const std::string& reason);
obs::json_value make_stats_reply(obs::json_value server_stats,
                                 obs::json_value cache_stats);

}  // namespace ehdse::svc
