#include "svc/framing.hpp"

namespace ehdse::svc {

frame_splitter::status frame_splitter::next(std::string& out) {
    if (poisoned_) return status::overflow;
    while (true) {
        const std::size_t nl = buffer_.find('\n');
        if (nl == std::string::npos) {
            if (buffer_.size() >= max_frame_) {
                poisoned_ = true;
                return status::overflow;
            }
            return status::need_more;
        }
        if (nl + 1 > max_frame_) {  // terminator arrived past the limit
            poisoned_ = true;
            return status::overflow;
        }
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;  // keep-alive padding
        out = std::move(line);
        return status::frame;
    }
}

}  // namespace ehdse::svc
