// Admission-controlled FIFO between the connection readers and the shared
// exec pool — the piece that turns "many concurrent clients" into "a
// bounded amount of promised work". Three invariants:
//
//   * Bounded admission. A submit is either accepted (and will receive
//     exactly one terminal frame: result or cancelled) or rejected
//     immediately (queue_full / quota_exceeded / draining / duplicate_id).
//     Nothing is silently dropped between those outcomes.
//   * Cancellable while queued. A request that has not been handed to a
//     runner can be cancelled or swept away by its client's disconnect;
//     once pop() returns it, it runs to completion (cancel answers
//     too_late — the evaluators have no safe preemption point).
//   * Drainable. begin_drain() stops admissions; wait_idle() returns when
//     every already-accepted request has reached a terminal state — the
//     SIGTERM half of the server's graceful shutdown.
//
// The queue knows nothing about sockets or specs: a job is two callbacks
// (run / cancelled) plus (client, id) identity, so it unit-tests without
// a server around it. Two locking rules make it compose with the server:
// callbacks are always invoked OUTSIDE the queue lock (they take the
// connection write lock), and enqueue() itself never invokes a callback —
// so the reader thread may hold the connection write lock across
// enqueue(), which is exactly how the server keeps the `accepted` frame
// ahead of any frame a runner sends (see server.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>

namespace ehdse::svc {

struct queue_limits {
    std::size_t max_queued = 256;     ///< global pending-request bound
    std::size_t max_per_client = 64;  ///< per-connection queued+running bound
};

class request_queue {
public:
    explicit request_queue(queue_limits limits = {});

    enum class admit {
        accepted,
        queue_full,
        quota_exceeded,
        draining,
        duplicate_id,
    };

    enum class cancel_outcome {
        cancelled,  ///< removed while queued; cancelled callback was invoked
        running,    ///< already executing — too late
        not_found,  ///< no live request under this (client, id)
    };

    struct job {
        std::uint64_t client = 0;
        std::string id;
        /// Execute the request and send its result frame.
        std::function<void()> run;
        /// The request was cancelled before starting. `notify` is false
        /// when the client is already gone (disconnect sweep).
        std::function<void(bool notify)> cancelled;
    };

    /// Admit or reject. On accepted, *queue_depth (when non-null)
    /// receives the pending count including this job.
    admit enqueue(job j, std::size_t* queue_depth = nullptr);

    /// Cancel a queued request. Invokes its cancelled(true) callback
    /// (outside the lock) when the outcome is `cancelled`.
    cancel_outcome cancel(std::uint64_t client, const std::string& id);

    /// Cancel every queued request (drain-to-stop path). Each cancelled
    /// callback is invoked with notify=true. Returns the number removed.
    std::size_t cancel_all();

    /// Sweep a disconnected client's queued requests (callbacks invoked
    /// with notify=false). Running requests finish normally; their
    /// result frames die against the closed socket.
    std::size_t drop_client(std::uint64_t client);

    /// Next runnable job, marked running; nullopt when the queue is
    /// empty. Pair every successful pop with finish().
    std::optional<job> pop();

    /// Release a popped job's quota slot and wake drain waiters.
    void finish(std::uint64_t client, const std::string& id);

    /// Reject all future enqueues with `draining`. Irreversible.
    void begin_drain();
    bool draining() const;

    /// Block until no request is queued or running.
    void wait_idle();

    std::size_t queued() const;
    std::size_t running() const;

private:
    struct client_state {
        std::set<std::string> live;  ///< queued + running ids
    };

    /// Caller holds mutex_. Drops the id, erasing empty client records.
    void release_locked(std::uint64_t client, const std::string& id);

    queue_limits limits_;

    mutable std::mutex mutex_;
    std::condition_variable idle_;
    std::deque<job> pending_;
    std::map<std::uint64_t, client_state> clients_;
    std::size_t running_ = 0;
    bool draining_ = false;
};

}  // namespace ehdse::svc
