#include "power/load_bank.hpp"

#include <stdexcept>

namespace ehdse::power {

load_id load_bank::add_load(std::string name) {
    loads_.push_back(slot{std::move(name)});
    return loads_.size() - 1;
}

const load_bank::slot& load_bank::at(load_id id) const {
    if (id >= loads_.size()) throw std::out_of_range("load_bank: bad load id");
    return loads_[id];
}

load_bank::slot& load_bank::at(load_id id) {
    if (id >= loads_.size()) throw std::out_of_range("load_bank: bad load id");
    return loads_[id];
}

const std::string& load_bank::name_of(load_id id) const { return at(id).name; }

void load_bank::set_current(load_id id, double amps) {
    if (amps < 0.0) throw std::invalid_argument("load_bank: negative current");
    at(id).current_a = amps;
}

void load_bank::set_resistance(load_id id, double ohms) {
    if (ohms <= 0.0) throw std::invalid_argument("load_bank: resistance must be > 0");
    at(id).conductance_s = 1.0 / ohms;
}

void load_bank::clear_resistance(load_id id) { at(id).conductance_s = 0.0; }

void load_bank::turn_off(load_id id) {
    slot& s = at(id);
    s.current_a = 0.0;
    s.conductance_s = 0.0;
}

double load_bank::current_of(load_id id, double v) const {
    const slot& s = at(id);
    return s.current_a + s.conductance_s * v;
}

double load_bank::total_current(double v) const {
    double acc = 0.0;
    for (const slot& s : loads_) acc += s.current_a + s.conductance_s * v;
    return acc;
}

}  // namespace ehdse::power
