// Abstract energy-storage element behind the rectifier.
//
// The paper's system banks harvested energy in a supercapacitor; the
// surrounding literature (paper refs [4-6]) debates supercapacitors
// against thin-film batteries. Both plants (envelope and transient) talk
// to storage only through this interface, so the comparison is a drop-in:
// the storage exposes its state as a terminal voltage v, with
//
//   energy_at(v)                 stored (recoverable) energy at v
//   voltage_after_withdrawal     state after an instantaneous energy pull
//   dv_dt(v, i_net)              state dynamics under a net current
//
// kept mutually consistent so the kernel's energy bookkeeping closes.
#pragma once

namespace ehdse::power {

class storage_model {
public:
    virtual ~storage_model() = default;

    /// Stored energy at terminal voltage v (joules).
    virtual double energy_at(double v) const = 0;

    /// Voltage after withdrawing `joules` from a store at voltage v
    /// (floors at the empty state; throws on negative withdrawals).
    virtual double voltage_after_withdrawal(double v, double joules) const = 0;

    /// dV/dt under net inflow current i_net (positive charges the store),
    /// including self-discharge and any rating/acceptance clamps.
    virtual double dv_dt(double v, double i_net_a) const = 0;

    /// Highest terminal voltage the device tolerates / reports.
    virtual double max_voltage() const = 0;
};

}  // namespace ehdse::power
