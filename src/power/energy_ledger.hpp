// Per-component energy accounting.
//
// The optimisation story of the paper is an energy budget: every joule the
// harvester banks is spent by some component. The ledger attributes
// consumed (and harvested) energy to named accounts so benchmarks and
// examples can print the breakdown behind a transmission count.
#pragma once

#include <map>
#include <ostream>
#include <string>

namespace ehdse::power {

class energy_ledger {
public:
    /// Add `joules` (>= 0) to the named account.
    void record(const std::string& account, double joules);

    /// Total recorded for one account (0 when absent).
    double total(const std::string& account) const;

    /// Sum over all accounts.
    double grand_total() const;

    /// Number of accounts touched.
    std::size_t account_count() const noexcept { return accounts_.size(); }

    const std::map<std::string, double>& accounts() const noexcept { return accounts_; }

    void clear() { accounts_.clear(); }

    /// Pretty table: account, millijoules, share of the grand total.
    void write_report(std::ostream& os) const;

private:
    std::map<std::string, double> accounts_;
};

}  // namespace ehdse::power
