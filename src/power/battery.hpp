// Thin-film rechargeable battery storage (e.g. LiPON cells of the
// Cymbet/IPS class used in energy-harvesting nodes).
//
// Model: charge-linear open-circuit voltage between v_empty and v_full,
// i.e. q(v) = C_eff (v - 0) with C_eff = capacity / (v_full - v_empty)
// restricted to the [v_empty, v_full] window, so dV/dt = i / C_eff and
// the recoverable energy is the integral of v dq — consistent with the
// same quadratic form the kernel's bookkeeping uses. On top of that:
// a charge-acceptance ceiling (thin-film cells take milliamps at most)
// and a small self-discharge.
//
// Against a supercapacitor the terminal voltage barely moves across the
// hour (millivolt-scale), so the node's Table II policy effectively sees
// one band — the behavioural difference bench_ext_storage_sizing probes.
#pragma once

#include "power/storage.hpp"

namespace ehdse::power {

struct battery_params {
    double capacity_c = 3.6;          ///< 1 mAh thin-film cell
    double v_empty = 2.70;            ///< OCV at zero usable charge
    double v_full = 3.05;             ///< OCV fully charged
    double charge_current_limit_a = 5e-3;   ///< acceptance ceiling
    double self_discharge_a = 0.2e-6;       ///< ~leakage floor
};

class thin_film_battery final : public storage_model {
public:
    explicit thin_film_battery(battery_params params = {});

    const battery_params& params() const noexcept { return params_; }

    /// Effective capacitance of the charge-linear OCV: Q / (v_full - v_empty).
    double effective_capacitance() const noexcept { return c_eff_; }

    /// State of charge in [0, 1] at terminal voltage v (clamped).
    double state_of_charge(double v) const;

    double energy_at(double v) const override;
    double voltage_after_withdrawal(double v, double joules) const override;
    double dv_dt(double v, double i_net_a) const override;
    double max_voltage() const override { return params_.v_full; }

private:
    battery_params params_;
    double c_eff_;
};

}  // namespace ehdse::power
