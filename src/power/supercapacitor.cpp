#include "power/supercapacitor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ehdse::power {

supercapacitor::supercapacitor(supercapacitor_params params) : params_(params) {
    if (params_.capacitance_f <= 0.0)
        throw std::invalid_argument("supercapacitor: capacitance must be > 0");
    if (params_.leakage_resistance_ohm <= 0.0)
        throw std::invalid_argument("supercapacitor: leakage resistance must be > 0");
    if (params_.max_voltage_v <= 0.0)
        throw std::invalid_argument("supercapacitor: voltage rating must be > 0");
}

double supercapacitor::energy_at(double v) const {
    return 0.5 * params_.capacitance_f * v * v;
}

double supercapacitor::energy_between(double v_hi, double v_lo) const {
    return energy_at(v_hi) - energy_at(v_lo);
}

double supercapacitor::voltage_after_withdrawal(double v, double joules) const {
    if (joules < 0.0)
        throw std::invalid_argument("supercapacitor: negative withdrawal");
    const double remaining = energy_at(v) - joules;
    if (remaining <= 0.0) return 0.0;
    return std::sqrt(2.0 * remaining / params_.capacitance_f);
}

double supercapacitor::leakage_current(double v) const {
    return v / params_.leakage_resistance_ohm;
}

double supercapacitor::dv_dt(double v, double i_net_a) const {
    const double i_total = i_net_a - leakage_current(v);
    // Above the rating only discharge is allowed (a shunt protection
    // circuit would clamp a real board the same way).
    if (v >= params_.max_voltage_v && i_total > 0.0) return 0.0;
    // At 0 V only charging is allowed: a depleted capacitor cannot be
    // driven negative by the loads' constant-current terms.
    if (v <= 0.0 && i_total < 0.0) return 0.0;
    return i_total / params_.capacitance_f;
}

}  // namespace ehdse::power
