// Supercapacitor energy store.
//
// The paper's system stores harvested energy in a 0.55 F supercapacitor.
// In the envelope simulator the capacitor voltage is a continuous state
// advanced by the kernel; this class carries the parameters, performs the
// voltage/energy conversions and applies the instantaneous discrete
// withdrawals digital processes make (a transmission burst removes 227 uJ
// in 4.5 ms — negligible against the storage time constant, so it is
// applied as a step).
#pragma once

#include "power/storage.hpp"

namespace ehdse::power {

struct supercapacitor_params {
    double capacitance_f = 0.55;      ///< paper's example value
    /// Self-discharge path; large supercapacitors leak tens of uA —
    /// 150 kohm is ~19 uA at 2.8 V, a realistic mid-life figure.
    double leakage_resistance_ohm = 250e3;
    double max_voltage_v = 5.0;       ///< rating clamp
};

class supercapacitor final : public storage_model {
public:
    explicit supercapacitor(supercapacitor_params params = {});

    const supercapacitor_params& params() const noexcept { return params_; }
    double capacitance() const noexcept { return params_.capacitance_f; }

    /// Stored energy at voltage v: E = C v^2 / 2.
    double energy_at(double v) const override;

    /// Energy released when discharging from v_hi to v_lo.
    double energy_between(double v_hi, double v_lo) const;

    /// Voltage after withdrawing `joules` from a store at voltage v
    /// (floors at 0 when the request exceeds the stored energy).
    double voltage_after_withdrawal(double v, double joules) const override;

    /// Leakage current at voltage v (flows out of the store).
    double leakage_current(double v) const;

    /// dV/dt for a net inflow current i_net (positive charges the store),
    /// including the leakage path and clamped so the voltage cannot be
    /// driven above the rating.
    double dv_dt(double v, double i_net_a) const override;

    double max_voltage() const override { return params_.max_voltage_v; }

private:
    supercapacitor_params params_;
};

}  // namespace ehdse::power
