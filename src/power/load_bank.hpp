// Aggregation of the electrical loads hanging off the supercapacitor rail.
//
// Each system component (sensor node, microcontroller, accelerometer,
// actuator) registers a load slot. A slot draws a constant current and/or a
// resistive (conductance * V) current; digital processes flip these values
// as the component changes state — e.g. the sensor node's equivalent
// resistance is 167 ohm while transmitting and 5.8 Mohm asleep (paper
// eq. 8). The analogue right-hand side queries total_current(V) each step.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ehdse::power {

/// Handle identifying a registered load slot.
using load_id = std::size_t;

class load_bank {
public:
    /// Register a named load; starts with zero draw.
    load_id add_load(std::string name);

    std::size_t load_count() const noexcept { return loads_.size(); }
    const std::string& name_of(load_id id) const;

    /// Set the constant-current component (amps) of a slot.
    void set_current(load_id id, double amps);

    /// Set the resistive component as a resistance in ohms
    /// (infinity or <=0-guarded: use clear_resistance for "disconnected").
    void set_resistance(load_id id, double ohms);

    /// Remove the resistive component of a slot.
    void clear_resistance(load_id id);

    /// Zero the slot entirely (component off).
    void turn_off(load_id id);

    double current_of(load_id id, double v) const;

    /// Total current drawn from the rail at rail voltage v.
    double total_current(double v) const;

private:
    struct slot {
        std::string name;
        double current_a = 0.0;
        double conductance_s = 0.0;
    };

    const slot& at(load_id id) const;
    slot& at(load_id id);

    std::vector<slot> loads_;
};

}  // namespace ehdse::power
