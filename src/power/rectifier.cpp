#include "power/rectifier.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ehdse::power {

rectifier_operating_point bridge_average(double emf_amp_v, double store_v,
                                         double series_r_ohm,
                                         const rectifier_params& params) {
    if (!(emf_amp_v >= 0.0))
        throw std::invalid_argument("bridge_average: emf amplitude must be >= 0");
    if (!(store_v >= 0.0))
        throw std::invalid_argument("bridge_average: store voltage must be >= 0");
    if (!(series_r_ohm > 0.0))
        throw std::invalid_argument("bridge_average: series resistance must be > 0");

    rectifier_operating_point op;
    const double u = store_v + 2.0 * params.diode_drop_v;  // sink voltage
    if (emf_amp_v <= u) return op;  // blocked: all-zero operating point

    constexpr double pi = std::numbers::pi;
    const double e = emf_amp_v;
    const double r = series_r_ohm;
    const double theta1 = std::asin(u / e);
    const double span = pi - 2.0 * theta1;

    op.conducting = true;
    op.conduction_angle = span;
    op.i_avg_a = (2.0 * e * std::cos(theta1) - u * span) / (pi * r);
    op.p_mech_w = (e * e * (span / 2.0 + std::sin(2.0 * theta1) / 2.0) -
                   2.0 * u * e * std::cos(theta1)) /
                  (pi * r);
    op.p_store_w = store_v * op.i_avg_a;
    op.p_diode_w = 2.0 * params.diode_drop_v * op.i_avg_a;
    op.p_coil_w = op.p_mech_w - u * op.i_avg_a;
    return op;
}

}  // namespace ehdse::power
