#include "power/battery.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ehdse::power {

thin_film_battery::thin_film_battery(battery_params params) : params_(params) {
    if (params_.capacity_c <= 0.0)
        throw std::invalid_argument("thin_film_battery: capacity must be > 0");
    if (!(params_.v_full > params_.v_empty) || params_.v_empty <= 0.0)
        throw std::invalid_argument("thin_film_battery: require 0 < v_empty < v_full");
    if (params_.charge_current_limit_a <= 0.0)
        throw std::invalid_argument("thin_film_battery: charge limit must be > 0");
    c_eff_ = params_.capacity_c / (params_.v_full - params_.v_empty);
}

double thin_film_battery::state_of_charge(double v) const {
    const double soc =
        (v - params_.v_empty) / (params_.v_full - params_.v_empty);
    return std::clamp(soc, 0.0, 1.0);
}

double thin_film_battery::energy_at(double v) const {
    // Integral of v dq with q = C_eff v, same quadratic form the kernel's
    // balance checks assume. Below v_empty the cell is unusable: treat the
    // energy as pinned at the empty level.
    const double vv = std::max(v, params_.v_empty);
    return 0.5 * c_eff_ * vv * vv;
}

double thin_film_battery::voltage_after_withdrawal(double v, double joules) const {
    if (joules < 0.0)
        throw std::invalid_argument("thin_film_battery: negative withdrawal");
    const double remaining = energy_at(v) - joules;
    const double floor_energy = 0.5 * c_eff_ * params_.v_empty * params_.v_empty;
    if (remaining <= floor_energy) return params_.v_empty;
    return std::sqrt(2.0 * remaining / c_eff_);
}

double thin_film_battery::dv_dt(double v, double i_net_a) const {
    // Charge acceptance ceiling, self-discharge, and window clamps.
    double i = std::min(i_net_a, params_.charge_current_limit_a) -
               params_.self_discharge_a;
    if (v >= params_.v_full && i > 0.0) return 0.0;
    if (v <= params_.v_empty && i < 0.0) return 0.0;
    return i / c_eff_;
}

}  // namespace ehdse::power
