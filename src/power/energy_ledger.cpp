#include "power/energy_ledger.hpp"

#include <iomanip>
#include <stdexcept>

namespace ehdse::power {

void energy_ledger::record(const std::string& account, double joules) {
    if (joules < 0.0)
        throw std::invalid_argument("energy_ledger: negative energy for '" + account + "'");
    accounts_[account] += joules;
}

double energy_ledger::total(const std::string& account) const {
    const auto it = accounts_.find(account);
    return it == accounts_.end() ? 0.0 : it->second;
}

double energy_ledger::grand_total() const {
    double acc = 0.0;
    for (const auto& [name, joules] : accounts_) acc += joules;
    return acc;
}

void energy_ledger::write_report(std::ostream& os) const {
    const double total_j = grand_total();
    os << std::left << std::setw(28) << "account" << std::right << std::setw(12)
       << "energy/mJ" << std::setw(10) << "share/%" << '\n';
    for (const auto& [name, joules] : accounts_) {
        const double share = total_j > 0.0 ? 100.0 * joules / total_j : 0.0;
        os << std::left << std::setw(28) << name << std::right << std::setw(12)
           << std::fixed << std::setprecision(3) << joules * 1e3 << std::setw(10)
           << std::setprecision(1) << share << '\n';
    }
    os << std::left << std::setw(28) << "total" << std::right << std::setw(12)
       << std::setprecision(3) << total_j * 1e3 << '\n';
}

}  // namespace ehdse::power
