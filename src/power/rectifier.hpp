// Diode-bridge rectifier, cycle-averaged model.
//
// The microgenerator's sinusoidal emf e(t) = E sin(wt) drives the storage
// capacitor (held at voltage V over one vibration cycle) through a full
// bridge with per-diode drop Vd and the coil's series resistance R. The
// bridge conducts while |e| exceeds the sink voltage U = V + 2 Vd, i.e. for
// theta in (theta1, pi - theta1) each half cycle with theta1 = asin(U/E).
//
// Closed-form cycle averages (used by the envelope simulator and verified
// against the full transient model in tests):
//   I_avg  = (1/(pi R)) [ 2 E cos(theta1) - U (pi - 2 theta1) ]
//   P_elec = (1/(pi R)) [ E^2 ((pi - 2 theta1)/2 + sin(2 theta1)/2)
//                         - 2 U E cos(theta1) ]
// with the power split P_elec = P_coil + (V + 2 Vd) I_avg, of which
// P_store = V I_avg reaches the supercapacitor and P_diode = 2 Vd I_avg is
// lost in the bridge.
#pragma once

namespace ehdse::power {

/// Bridge parameters. Defaults model a Schottky bridge as used on
/// energy-harvesting power conditioning boards.
struct rectifier_params {
    double diode_drop_v = 0.30;  ///< forward drop per diode (two in series conduct)
};

/// Cycle-averaged operating point of the bridge at one (E, V) pair.
struct rectifier_operating_point {
    bool conducting = false;       ///< E > V + 2 Vd
    double conduction_angle = 0.0; ///< pi - 2*theta1 per half cycle (radians)
    double i_avg_a = 0.0;          ///< average current delivered into the store
    double p_mech_w = 0.0;         ///< average power drawn from the mechanics (= P_elec)
    double p_store_w = 0.0;        ///< average power into the supercapacitor
    double p_diode_w = 0.0;        ///< average power dissipated in the bridge
    double p_coil_w = 0.0;         ///< average power dissipated in the coil
};

/// Evaluate the averaged bridge at emf amplitude `emf_amp_v`, storage
/// voltage `store_v` and series (coil) resistance `series_r_ohm`.
/// All inputs must be finite; store_v >= 0, series_r_ohm > 0.
rectifier_operating_point bridge_average(double emf_amp_v, double store_v,
                                         double series_r_ohm,
                                         const rectifier_params& params = {});

}  // namespace ehdse::power
