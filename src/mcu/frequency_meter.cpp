#include "mcu/frequency_meter.hpp"

#include <algorithm>
#include <stdexcept>

namespace ehdse::mcu {

double frequency_meter::frequency_sigma(double true_hz) const {
    if (true_hz <= 0.0)
        throw std::invalid_argument("frequency_meter: true frequency must be > 0");
    return params_.capture_loop_cycles * true_hz * true_hz /
           (params_.measured_signal_cycles * params_.clock_hz);
}

double frequency_meter::measure_frequency(double true_hz, numeric::rng& rng) const {
    const double f = rng.normal(true_hz, frequency_sigma(true_hz));
    // A real counter cannot report a non-positive frequency.
    return std::max(f, 0.1 * true_hz);
}

double frequency_meter::phase_sigma() const {
    return params_.capture_loop_cycles / params_.clock_hz;
}

double frequency_meter::measure_phase_offset(double true_offset_s,
                                             numeric::rng& rng) const {
    return rng.normal(true_offset_s, phase_sigma());
}

}  // namespace ehdse::mcu
