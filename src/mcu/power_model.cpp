#include "mcu/power_model.hpp"

namespace ehdse::mcu {

double mcu_active_power(const mcu_params& p) {
    if (p.clock_hz <= 0.0)
        throw std::invalid_argument("mcu_active_power: clock must be > 0");
    return p.static_power_w + p.energy_per_cycle_j * p.clock_hz;
}

double measurement_duration(const mcu_params& p, double signal_hz) {
    if (signal_hz <= 0.0)
        throw std::invalid_argument("measurement_duration: signal frequency must be > 0");
    return p.measured_signal_cycles / signal_hz;
}

double coarse_energy(const mcu_params& p, double signal_hz) {
    const double t_meas = measurement_duration(p, signal_hz);
    const double t_calc = p.coarse_calc_cycles / p.clock_hz;
    return mcu_active_power(p) * (t_meas + t_calc);
}

double fine_measurement_duration(const mcu_params& p, double signal_hz) {
    // Both the accelerometer and the microgenerator signal are captured.
    return 2.0 * p.measured_signal_cycles / signal_hz;
}

double fine_energy(const mcu_params& p, double signal_hz) {
    const double t_meas = fine_measurement_duration(p, signal_hz);
    const double t_calc = p.fine_calc_cycles / p.clock_hz;
    return mcu_active_power(p) * (t_meas + t_calc);
}

double actuator_move_time(const actuator_params& p, int steps) {
    if (steps < 0) throw std::invalid_argument("actuator_move_time: negative steps");
    return p.step_time_s * steps;
}

double actuator_move_energy(const actuator_params& p, int steps) {
    if (steps < 0) throw std::invalid_argument("actuator_move_energy: negative steps");
    if (steps == 0) return 0.0;
    if (steps == 1) return p.single_step_energy_j;
    return p.multi_step_energy_j * steps;
}

}  // namespace ehdse::mcu
