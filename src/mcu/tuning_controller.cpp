#include "mcu/tuning_controller.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ehdse::mcu {

tuning_controller::tuning_controller(sim::sim_context& sim, harvester::plant& plant,
                                     const harvester::tuning_table& table,
                                     controller_params params)
    : sim::process(sim),
      plant_(plant),
      table_(table),
      params_(params),
      meter_(params.mcu),
      rng_(params.rng_seed) {
    if (params_.watchdog_period_s <= 0.0)
        throw std::invalid_argument("tuning_controller: watchdog period must be > 0");
    if (params_.settle_time_s < 0.0)
        throw std::invalid_argument("tuning_controller: negative settle time");
    if (params_.phase_threshold_s <= 0.0)
        throw std::invalid_argument("tuning_controller: phase threshold must be > 0");

    plant_.set_sustained_draw("mcu.sleep", params_.mcu.sleep_current_a);
    begin_sleep();
}

void tuning_controller::begin_sleep() {
    phase_ = phase::sleeping;
    wake_after(params_.watchdog_period_s);
}

void tuning_controller::activate() {
    switch (phase_) {
        case phase::sleeping: {
            // Watchdog fired (Algorithm 1 lines 2-3).
            ++stats_.wakeups;
            if (params_.mode == tuning_mode::disabled) {
                begin_sleep();
                return;
            }
            plant_.withdraw(mcu_active_power(params_.mcu) *
                                (params_.mcu.wake_check_cycles / params_.mcu.clock_hz),
                            "mcu.wake_check");
            if (plant_.storage_voltage() < params_.actuator.min_drive_voltage_v) {
                ++stats_.low_energy_skips;
                begin_sleep();
                return;
            }
            if (params_.mode == tuning_mode::fine_only) {
                fine_steps_this_run_ = 0;
                fine_first_iteration_ = true;
                begin_fine_measurement();
                return;
            }
            begin_measurement();
            return;
        }
        case phase::measuring:
            finish_measurement();
            return;
        case phase::coarse_settling:
            // Algorithm 2 finished; Algorithm 1 line 16 starts the phase check.
            if (params_.mode == tuning_mode::coarse_only) {
                begin_sleep();
                return;
            }
            begin_fine_measurement();
            return;
        case phase::fine_measuring:
            finish_fine_measurement();
            return;
        case phase::fine_settling:
            begin_fine_measurement();
            return;
    }
}

void tuning_controller::begin_measurement() {
    // Timer1 on, counting 8 periods of the microgenerator signal
    // (Algorithm 1 lines 4-9). The MCU is busy for the full window.
    phase_ = phase::measuring;
    const double f_signal = std::max(plant_.vibration_frequency(), 1.0);
    wake_after(measurement_duration(params_.mcu, f_signal) +
               params_.mcu.coarse_calc_cycles / params_.mcu.clock_hz);
}

void tuning_controller::finish_measurement() {
    ++stats_.measurements;
    const double f_true = plant_.vibration_frequency();
    plant_.withdraw(coarse_energy(params_.mcu, f_true), "mcu.measure");

    const double f_hat = meter_.measure_frequency(f_true, rng_);
    const int target = table_.lookup(f_hat);
    const int current = plant_.position();

    if (std::abs(target - current) <= params_.coarse_deadband_steps) {
        // Algorithm 1 lines 11-12: position already optimal, sleep.
        ++stats_.position_matches;
        begin_sleep();
        return;
    }

    // Algorithm 2: command the move, magnet travels, then settle 5 s.
    ++stats_.coarse_tunings;
    const int steps = std::abs(target - current);
    stats_.coarse_steps += static_cast<std::uint64_t>(steps);
    plant_.withdraw(actuator_move_energy(params_.actuator, steps), "actuator.coarse");
    plant_.set_position(target);

    phase_ = phase::coarse_settling;
    fine_steps_this_run_ = 0;
    fine_first_iteration_ = true;
    wake_after(actuator_move_time(params_.actuator, steps) + params_.settle_time_s);
}

double tuning_controller::true_phase_offset() const {
    // Displacement lags base acceleration by phase_lag(); at resonance the
    // lag is exactly pi/2. Expressed as a time offset at the present
    // vibration frequency (what the 100 us threshold is compared against).
    const double f = std::max(plant_.vibration_frequency(), 1.0);
    const double lag = plant_.phase_lag();
    return (lag - std::numbers::pi / 2.0) / (2.0 * std::numbers::pi * f);
}

void tuning_controller::begin_fine_measurement() {
    // Algorithm 3 lines 5-7: accelerometer on, both signals captured.
    phase_ = phase::fine_measuring;
    const double f_signal = std::max(plant_.vibration_frequency(), 1.0);
    const double t_capture = fine_measurement_duration(params_.mcu, f_signal) +
                             params_.mcu.fine_calc_cycles / params_.mcu.clock_hz;
    wake_after(std::max(t_capture, params_.accelerometer.on_time_s));
}

void tuning_controller::finish_fine_measurement() {
    ++stats_.fine_iterations;
    const double f_true = plant_.vibration_frequency();
    plant_.withdraw(fine_energy(params_.mcu, f_true), "mcu.fine");
    plant_.withdraw(params_.accelerometer.energy_per_use_j, "accelerometer");

    const double measured = meter_.measure_phase_offset(true_phase_offset(), rng_);
    const double abs_offset = std::abs(measured);

    if (abs_offset < params_.phase_threshold_s) {
        // Algorithm 3 exit: resonance reached (as far as the MCU can tell).
        ++stats_.fine_converged;
        begin_sleep();
        return;
    }
    // "Improving" must clear the measurement noise floor: far from
    // resonance the phase saturates and successive readings differ only by
    // noise, which a real firmware treats as convergence failure.
    const double improvement_floor = 0.25 * meter_.phase_sigma();
    const bool out_of_steps = fine_steps_this_run_ >= params_.max_fine_steps;
    const bool not_improving =
        !fine_first_iteration_ &&
        abs_offset >= last_fine_abs_offset_ - improvement_floor;
    if (out_of_steps || not_improving) {
        // The threshold is unreachable at this measurement accuracy /
        // position quantisation; a real firmware bails out the same way.
        begin_sleep();
        return;
    }
    last_fine_abs_offset_ = abs_offset;
    fine_first_iteration_ = false;

    // Positive offset: lag > pi/2, i.e. driving above resonance — raise the
    // resonant frequency by extending the actuator (one step), and vice versa.
    const int direction = measured > 0.0 ? 1 : -1;
    const int current = plant_.position();
    const int target = std::clamp(current + direction, 0,
                                  harvester::microgenerator_params::k_position_count - 1);
    if (target == current) {
        begin_sleep();  // pinned at the end of travel
        return;
    }
    ++fine_steps_this_run_;
    ++stats_.fine_steps;
    plant_.withdraw(actuator_move_energy(params_.actuator, 1), "actuator.fine");
    plant_.set_position(target);

    phase_ = phase::fine_settling;
    wake_after(actuator_move_time(params_.actuator, 1) + params_.settle_time_s);
}

}  // namespace ehdse::mcu
