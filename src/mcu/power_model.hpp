// Power/energy models of the tuning subsystem components (paper Table IV
// and section IV-C).
//
// The microcontroller's active power follows the standard CMOS split into a
// static floor plus an energy-per-cycle term,
//     P_active(f_clk) = P_static + E_cycle * f_clk,
// calibrated so that at the original design's 4 MHz clock the coarse-tuning
// power matches the published 5.0 mW. The actuator and accelerometer use
// the published per-operation figures directly.
#pragma once

#include <stdexcept>

namespace ehdse::mcu {

/// PIC16F884 electrical model. `clock_hz` is the x1 optimisation parameter.
struct mcu_params {
    double clock_hz = 4.0e6;           ///< x1: 125 kHz .. 8 MHz
    double static_power_w = 0.5e-3;    ///< leakage + analogue periphery
    double energy_per_cycle_j = 1.125e-9;  ///< dynamic energy per clock cycle
    double sleep_current_a = 1.0e-6;   ///< sleep + watchdog oscillator
    double supply_v = 2.8;             ///< nominal rail for current conversion

    double wake_check_cycles = 500.0;  ///< voltage check on each watchdog wake
    double coarse_calc_cycles = 2000.0;   ///< LUT lookup + command assembly
    double fine_calc_cycles = 20000.0;    ///< phase computation per iteration

    /// Cycles of the input signal counted per frequency measurement
    /// (Algorithm 1 measures 8 periods).
    double measured_signal_cycles = 8.0;

    /// Software capture-loop length in clock cycles; sets the measurement
    /// quantisation (see frequency_meter). A tight polling loop on the PIC
    /// is ~30 instruction cycles per iteration.
    double capture_loop_cycles = 30.0;
};

/// Active-mode power at the configured clock.
double mcu_active_power(const mcu_params& p);

/// Duration of one frequency measurement: counting `measured_signal_cycles`
/// periods of a `signal_hz` input (the counter loop runs for a fixed signal
/// time regardless of clock — the paper's reason high clocks cost energy).
double measurement_duration(const mcu_params& p, double signal_hz);

/// Energy of one frequency measurement followed by the coarse calculation.
double coarse_energy(const mcu_params& p, double signal_hz);

/// Duration of one fine-tuning phase measurement (both signals captured).
double fine_measurement_duration(const mcu_params& p, double signal_hz);

/// MCU energy of one fine-tuning iteration (excludes accelerometer/actuator).
double fine_energy(const mcu_params& p, double signal_hz);

/// Haydon 21000-series linear actuator (paper Table IV):
/// a single step costs 4.06 mJ in 5 ms; sustained multi-step moves average
/// 2.03 mJ per step (the 100-step row: 203 mJ in 500 ms).
struct actuator_params {
    double step_time_s = 5.0e-3;
    double single_step_energy_j = 4.06e-3;
    double multi_step_energy_j = 2.03e-3;  ///< per step when steps > 1
    double min_drive_voltage_v = 2.6;      ///< Algorithm 1's energy gate
};

/// Time to move `steps` actuator steps (steps >= 0).
double actuator_move_time(const actuator_params& p, int steps);

/// Energy to move `steps` actuator steps (steps >= 0).
double actuator_move_energy(const actuator_params& p, int steps);

/// LIS3L06AL accelerometer (paper Table IV): 153 ms on-time per fine-tuning
/// measurement at 5.1 mA / 13.2 mW => 2.02 mJ.
struct accelerometer_params {
    double on_time_s = 0.153;
    double current_a = 5.1e-3;
    double power_w = 13.2e-3;
    double energy_per_use_j = 2.02e-3;
};

}  // namespace ehdse::mcu
