// The harvester tuning controller — paper Algorithms 1 (top level),
// 2 (coarse-grain) and 3 (fine-grain) as a digital process on the
// mixed-signal kernel.
//
// Per watchdog wake-up:
//   1. check the store holds enough energy for the actuator (Vs >= 2.6 V,
//      Algorithm 1 line 3); sleep again otherwise;
//   2. measure the vibration frequency over 8 signal periods (Timer1 on,
//      clock-dependent energy and accuracy — see frequency_meter);
//   3. look the optimum 8-bit magnet position up; if it differs from the
//      current position run coarse tuning (move, wait 5 s to settle,
//      verify) and then fine tuning (1-step moves minimising the
//      accelerometer/microgenerator phase offset, threshold 100 us);
//      if it already matches, go back to sleep (Algorithm 1 line 12).
//
// Every phase charges its energy to the plant: MCU measurement/calculation
// energy at the configured clock, actuator step energy, and accelerometer
// on-time per fine iteration (paper Table IV).
#pragma once

#include <cstdint>

#include "harvester/plant.hpp"
#include "harvester/tuning_table.hpp"
#include "mcu/frequency_meter.hpp"
#include "mcu/power_model.hpp"
#include "numeric/rng.hpp"
#include "sim/simulator.hpp"

namespace ehdse::mcu {

/// Which tuning subroutines run — the paper's section IV-C argues the
/// two-stage method beats either subroutine alone; bench_ablation_tuning
/// quantifies that claim.
enum class tuning_mode {
    two_stage,    ///< Algorithm 1 as published: coarse then fine
    coarse_only,  ///< Algorithm 2 only (LUT accuracy floor)
    fine_only,    ///< Algorithm 3 only (1-step walks, poor for large jumps)
    disabled,     ///< never retune: a fixed-frequency harvester baseline
};

/// Controller configuration; the two MCU-side optimisation parameters live
/// here (x1 = mcu.clock_hz, x2 = watchdog_period_s).
struct controller_params {
    mcu_params mcu{};
    actuator_params actuator{};
    accelerometer_params accelerometer{};
    tuning_mode mode = tuning_mode::two_stage;

    double watchdog_period_s = 320.0;  ///< x2: 60 .. 600 s
    double settle_time_s = 5.0;        ///< wait after each magnet move
    double phase_threshold_s = 100e-6; ///< Algorithm 3 convergence criterion
    int max_fine_steps = 20;           ///< guard against threshold unreachable
    /// Algorithm 1 line 11 declares a match "within the 1/2^8 accuracy":
    /// positions within this many steps of the LUT optimum count as matching,
    /// so fine-tuning's sub-LSB corrections don't trigger a coarse move back
    /// on the next wake-up.
    int coarse_deadband_steps = 2;
    std::uint64_t rng_seed = 0x5eed;   ///< measurement-noise stream
};

/// Cumulative behaviour counters for reporting and tests.
struct controller_stats {
    std::uint64_t wakeups = 0;             ///< watchdog firings
    std::uint64_t low_energy_skips = 0;    ///< Vs < 2.6 V at wake
    std::uint64_t measurements = 0;        ///< frequency measurements taken
    std::uint64_t position_matches = 0;    ///< LUT agreed with current position
    std::uint64_t coarse_tunings = 0;      ///< coarse moves commanded
    std::uint64_t coarse_steps = 0;        ///< total actuator steps, coarse
    std::uint64_t fine_iterations = 0;     ///< fine measure/decide rounds
    std::uint64_t fine_steps = 0;          ///< total actuator steps, fine
    std::uint64_t fine_converged = 0;      ///< runs ending under threshold
};

class tuning_controller final : public sim::process {
public:
    /// `plant` and `table` must outlive the controller. The first watchdog
    /// fires a full period after t = 0 (Algorithm 1 line 2 sleeps first).
    tuning_controller(sim::sim_context& sim, harvester::plant& plant,
                      const harvester::tuning_table& table,
                      controller_params params = {});

    const controller_params& params() const noexcept { return params_; }
    const controller_stats& stats() const noexcept { return stats_; }

    /// True while executing a tuning pass (not sleeping).
    bool busy() const noexcept { return phase_ != phase::sleeping; }

private:
    enum class phase {
        sleeping,        ///< waiting for the watchdog
        measuring,       ///< Timer1 counting 8 signal periods
        coarse_settling, ///< magnet moved, waiting 5 s
        fine_measuring,  ///< accelerometer + phase capture in flight
        fine_settling,   ///< 1-step move done, waiting 5 s
    };

    void activate() override;

    void begin_sleep();
    void begin_measurement();
    void finish_measurement();
    void begin_fine_measurement();
    void finish_fine_measurement();

    /// True phase offset (seconds) between displacement and resonance phase.
    double true_phase_offset() const;

    harvester::plant& plant_;
    const harvester::tuning_table& table_;
    controller_params params_;
    frequency_meter meter_;
    numeric::rng rng_;
    controller_stats stats_;

    phase phase_ = phase::sleeping;
    double last_fine_abs_offset_ = 0.0;
    int fine_steps_this_run_ = 0;
    bool fine_first_iteration_ = true;
};

}  // namespace ehdse::mcu
