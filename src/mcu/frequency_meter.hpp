// Clock-dependent measurement model (paper section III, parameter 1).
//
// The PIC16F884 measures the vibration period by polling the comparator
// output in a software loop and counting Timer1 ticks across 8 signal
// periods. Each edge capture is therefore quantised to one capture-loop
// iteration, L clock cycles long. Propagating that timing error through
// f = N / T gives a frequency standard error
//     sigma_f ~= L * f^2 / (N * f_clk),
// so halving the clock doubles the measurement error — the trade-off that
// makes the clock frequency worth optimising: fast clocks measure well but
// burn power for the whole (fixed, signal-defined) measurement window.
//
// The same loop quantisation limits the fine-tuning phase comparison:
// a phase offset measured between two polled edges carries an error of
// about L / f_clk seconds, to be compared against Algorithm 3's 100 us
// convergence threshold.
#pragma once

#include "mcu/power_model.hpp"
#include "numeric/rng.hpp"

namespace ehdse::mcu {

class frequency_meter {
public:
    explicit frequency_meter(mcu_params params) : params_(params) {}

    const mcu_params& params() const noexcept { return params_; }

    /// Standard error of a frequency measurement at a true frequency f.
    double frequency_sigma(double true_hz) const;

    /// One noisy frequency measurement (gaussian error, clamped positive).
    double measure_frequency(double true_hz, numeric::rng& rng) const;

    /// Standard error of a phase-offset (time) measurement in seconds.
    double phase_sigma() const;

    /// One noisy phase-offset measurement (true offset in seconds).
    double measure_phase_offset(double true_offset_s, numeric::rng& rng) const;

private:
    mcu_params params_;
};

}  // namespace ehdse::mcu
