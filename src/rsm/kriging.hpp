// Gaussian-process (kriging) surrogate — the classic alternative to
// polynomial response surfaces in design-space exploration. Provided so
// the methodology layer can be compared like-for-like against the paper's
// quadratic RSM (bench_ext_surrogates): same DOE budget, which surrogate
// predicts unseen configurations better?
//
// Model: zero-mean GP on centred observations with a squared-exponential
// kernel k(a,b) = s^2 exp(-|a-b|^2 / (2 l^2)) plus a noise nugget. The
// posterior mean/variance use one Cholesky factorisation of the kernel
// matrix; hyperparameters can be chosen by maximising the log marginal
// likelihood with the library's own Nelder-Mead optimiser.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace ehdse::rsm {

struct gp_params {
    double length_scale = 1.0;      ///< l, in coded units
    double signal_variance = 1.0;   ///< s^2
    double noise_variance = 1e-6;   ///< nugget (also stabilises the solve)
};

/// A fitted Gaussian-process surrogate.
class gp_model {
public:
    gp_model() = default;

    /// Fit to coded points and observations with fixed hyperparameters.
    /// Throws std::invalid_argument on size mismatches or an empty set,
    /// std::domain_error if the kernel matrix is not positive-definite.
    gp_model(std::vector<numeric::vec> points, const numeric::vec& y,
             gp_params params);

    const gp_params& params() const noexcept { return params_; }
    std::size_t training_size() const noexcept { return points_.size(); }

    /// Posterior mean at a coded point.
    double predict(const numeric::vec& x) const;

    /// Posterior variance at a coded point (>= 0; ~nugget at training points).
    double predict_variance(const numeric::vec& x) const;

    /// Log marginal likelihood of the training data under the
    /// hyperparameters — the model-selection objective.
    double log_marginal_likelihood() const noexcept { return lml_; }

private:
    double kernel(const numeric::vec& a, const numeric::vec& b) const;

    std::vector<numeric::vec> points_;
    gp_params params_{};
    double mean_ = 0.0;
    numeric::vec alpha_;    ///< K^-1 (y - mean)
    numeric::matrix kinv_;  ///< kernel-matrix inverse (for the variance)
    double lml_ = 0.0;
};

/// Fit with hyperparameters chosen by maximising the log marginal
/// likelihood over (log length_scale, log signal_variance) via multistart
/// Nelder-Mead; the nugget is kept at `noise_variance`.
gp_model fit_gp_auto(const std::vector<numeric::vec>& points,
                     const numeric::vec& y, double noise_variance = 1e-6,
                     std::uint64_t seed = 0x6b5);

}  // namespace ehdse::rsm
