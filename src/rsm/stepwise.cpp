#include "rsm/stepwise.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "numeric/decomp.hpp"
#include "numeric/special.hpp"
#include "numeric/stats.hpp"

namespace ehdse::rsm {

reduced_model::reduced_model(std::size_t dimension,
                             std::vector<std::size_t> active_terms,
                             numeric::vec coefficients)
    : k_(dimension), terms_(std::move(active_terms)), beta_(std::move(coefficients)) {
    if (terms_.size() != beta_.size())
        throw std::invalid_argument("reduced_model: term/coefficient count mismatch");
    const std::size_t p_full = quadratic_term_count(k_);
    for (std::size_t t : terms_)
        if (t >= p_full)
            throw std::out_of_range("reduced_model: term index outside quadratic basis");
}

double reduced_model::predict(const numeric::vec& x) const {
    const numeric::vec full = quadratic_basis(x);
    double acc = 0.0;
    for (std::size_t i = 0; i < terms_.size(); ++i) acc += beta_[i] * full[terms_[i]];
    return acc;
}

std::string reduced_model::to_string(int precision) const {
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed;
    for (std::size_t i = 0; i < terms_.size(); ++i) {
        const double b = beta_[i];
        const std::string name = quadratic_term_name(k_, terms_[i]);
        if (i == 0) {
            os << b;
            if (name != "1") os << "*" << name;
            continue;
        }
        os << (b >= 0.0 ? " + " : " - ") << std::abs(b);
        if (name != "1") os << "*" << name;
    }
    return os.str();
}

namespace {

struct subset_fit {
    numeric::vec beta;
    numeric::vec fitted;
    double sse = 0.0;
    numeric::matrix info_inv;
};

subset_fit fit_subset(const std::vector<numeric::vec>& points,
                      const numeric::vec& y,
                      const std::vector<std::size_t>& terms) {
    numeric::matrix x;
    for (const auto& p : points) {
        const numeric::vec full = quadratic_basis(p);
        numeric::vec row(terms.size());
        for (std::size_t i = 0; i < terms.size(); ++i) row[i] = full[terms[i]];
        x.append_row(row);
    }
    const numeric::qr_decomposition qr(x);
    if (qr.rank_deficient())
        throw std::domain_error("backward_eliminate: rank-deficient subset fit");
    subset_fit out;
    out.beta = qr.solve(y);
    out.fitted = x * out.beta;
    out.sse = numeric::residual_sum_squares(y, out.fitted);
    out.info_inv = numeric::inverse(x.gram());
    return out;
}

}  // namespace

stepwise_result backward_eliminate(const std::vector<numeric::vec>& points,
                                   const numeric::vec& y, double alpha) {
    if (points.empty() || points.size() != y.size())
        throw std::invalid_argument("backward_eliminate: malformed inputs");
    if (alpha <= 0.0 || alpha >= 1.0)
        throw std::invalid_argument("backward_eliminate: alpha outside (0,1)");
    const std::size_t k = points.front().size();
    const std::size_t p_full = quadratic_term_count(k);
    if (points.size() <= p_full)
        throw std::invalid_argument(
            "backward_eliminate: need an over-determined design (n > " +
            std::to_string(p_full) + ")");

    std::vector<std::size_t> terms(p_full);
    for (std::size_t i = 0; i < p_full; ++i) terms[i] = i;

    stepwise_result out;
    while (true) {
        const subset_fit fit = fit_subset(points, y, terms);
        ++out.refits;
        const std::size_t n = points.size();
        const auto df = static_cast<double>(n - terms.size());
        const double sigma2 = fit.sse / df;

        // Least significant non-intercept term.
        double worst_p = -1.0;
        std::size_t worst_index = 0;
        for (std::size_t i = 0; i < terms.size(); ++i) {
            if (terms[i] == 0) continue;  // keep the intercept
            const double se = std::sqrt(sigma2 * fit.info_inv.at_unchecked(i, i));
            const double pv = se > 0.0
                                  ? numeric::student_t_two_sided_p(fit.beta[i] / se, df)
                                  : 0.0;
            if (pv > worst_p) {
                worst_p = pv;
                worst_index = i;
            }
        }

        const bool only_intercept_left =
            terms.size() == 1 || worst_p < 0.0;
        if (only_intercept_left || worst_p <= alpha) {
            out.model = reduced_model(k, terms, fit.beta);
            out.r_squared = numeric::r_squared(y, fit.fitted);
            out.adj_r_squared =
                numeric::adjusted_r_squared(y, fit.fitted, terms.size());
            return out;
        }
        out.dropped.push_back(quadratic_term_name(k, terms[worst_index]));
        terms.erase(terms.begin() + static_cast<std::ptrdiff_t>(worst_index));
    }
}

}  // namespace ehdse::rsm
