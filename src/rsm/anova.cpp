#include "rsm/anova.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "numeric/decomp.hpp"
#include "numeric/special.hpp"
#include "numeric/stats.hpp"

namespace ehdse::rsm {

anova_result analyse_fit(const std::vector<numeric::vec>& points,
                         const numeric::vec& y, const fit_result& fit) {
    const std::size_t n = points.size();
    if (n != y.size())
        throw std::invalid_argument("analyse_fit: observation count mismatch");
    const std::size_t p = fit.model.coefficients().size();
    if (fit.fitted.size() != n)
        throw std::invalid_argument("analyse_fit: fit does not match the data");
    if (n <= p)
        throw std::invalid_argument(
            "analyse_fit: saturated design (n <= p) has no residual degrees "
            "of freedom — add runs (e.g. doe_runs > 10) to assess the model");

    anova_result a;
    a.ss_total = numeric::total_sum_squares(y);
    a.ss_residual = fit.sse;
    a.ss_regression = a.ss_total - a.ss_residual;
    a.df_regression = p - 1;
    a.df_residual = n - p;
    a.ms_regression = a.ss_regression / static_cast<double>(a.df_regression);
    a.ms_residual = a.ss_residual / static_cast<double>(a.df_residual);
    a.sigma = std::sqrt(a.ms_residual);
    a.r_squared = fit.r_squared;
    a.adj_r_squared = fit.adj_r_squared;

    if (a.ms_residual > 0.0) {
        a.f_statistic = a.ms_regression / a.ms_residual;
        a.f_p_value = numeric::f_upper_p(a.f_statistic,
                                         static_cast<double>(a.df_regression),
                                         static_cast<double>(a.df_residual));
    } else {
        // Perfect fit with residual dof: infinitely significant.
        a.f_statistic = std::numeric_limits<double>::infinity();
        a.f_p_value = 0.0;
    }

    // Coefficient covariance: sigma^2 (X'X)^-1.
    const numeric::matrix x = build_design_matrix(points);
    const numeric::matrix info_inv = numeric::inverse(x.gram());
    const std::size_t k = points.front().size();
    const auto nu = static_cast<double>(a.df_residual);
    for (std::size_t t = 0; t < p; ++t) {
        coefficient_stat cs;
        cs.term = quadratic_term_name(k, t);
        cs.estimate = fit.model.coefficients()[t];
        cs.std_error = a.sigma * std::sqrt(info_inv.at_unchecked(t, t));
        if (cs.std_error > 0.0) {
            cs.t_value = cs.estimate / cs.std_error;
            cs.p_value = numeric::student_t_two_sided_p(cs.t_value, nu);
        } else {
            cs.t_value = std::numeric_limits<double>::infinity();
            cs.p_value = 0.0;
        }
        cs.significant_05 = cs.p_value < 0.05;
        a.coefficients.push_back(std::move(cs));
    }
    return a;
}

double prediction_std_error(const std::vector<numeric::vec>& points,
                            const anova_result& anova, const numeric::vec& x) {
    const numeric::matrix design = build_design_matrix(points);
    const numeric::matrix info_inv = numeric::inverse(design.gram());
    const numeric::vec b = quadratic_basis(x);
    if (b.size() != info_inv.rows())
        throw std::invalid_argument("prediction_std_error: dimension mismatch");
    const double quad = numeric::dot(b, info_inv * b);
    return anova.sigma * std::sqrt(std::max(quad, 0.0));
}

lack_of_fit_result lack_of_fit(const std::vector<numeric::vec>& points,
                               const numeric::vec& y, const fit_result& fit,
                               double tol) {
    const std::size_t n = points.size();
    if (n != y.size() || fit.fitted.size() != n)
        throw std::invalid_argument("lack_of_fit: input sizes do not match");

    // Group replicated design points (quadratic in the group count is fine
    // at DOE scales).
    std::vector<int> group(n, -1);
    std::size_t group_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (group[i] >= 0) continue;
        group[i] = static_cast<int>(group_count);
        for (std::size_t j = i + 1; j < n; ++j) {
            if (group[j] >= 0) continue;
            bool same = points[i].size() == points[j].size();
            for (std::size_t d = 0; same && d < points[i].size(); ++d)
                same = std::abs(points[i][d] - points[j][d]) <= tol;
            if (same) group[j] = static_cast<int>(group_count);
        }
        ++group_count;
    }

    // Pure error: within-group deviation from the group mean.
    std::vector<double> group_sum(group_count, 0.0);
    std::vector<std::size_t> group_n(group_count, 0);
    for (std::size_t i = 0; i < n; ++i) {
        group_sum[group[i]] += y[i];
        ++group_n[group[i]];
    }
    lack_of_fit_result r;
    r.replicate_groups = group_count;
    for (std::size_t i = 0; i < n; ++i) {
        const double mean_i = group_sum[group[i]] / static_cast<double>(group_n[group[i]]);
        r.ss_pure_error += (y[i] - mean_i) * (y[i] - mean_i);
    }
    r.df_pure_error = n - group_count;

    const double sse = fit.sse;
    r.ss_lack_of_fit = std::max(sse - r.ss_pure_error, 0.0);
    const std::size_t p = fit.model.coefficients().size();
    r.df_lack_of_fit = group_count > p ? group_count - p : 0;

    r.testable = r.df_pure_error > 0 && r.df_lack_of_fit > 0;
    if (r.testable) {
        const double ms_lof = r.ss_lack_of_fit / static_cast<double>(r.df_lack_of_fit);
        const double ms_pe = r.ss_pure_error / static_cast<double>(r.df_pure_error);
        if (ms_pe > 0.0) {
            r.f_statistic = ms_lof / ms_pe;
            r.p_value = numeric::f_upper_p(r.f_statistic,
                                           static_cast<double>(r.df_lack_of_fit),
                                           static_cast<double>(r.df_pure_error));
        } else {
            r.f_statistic = std::numeric_limits<double>::infinity();
            r.p_value = 0.0;
        }
    }
    return r;
}

std::string format_anova(const anova_result& a) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(3);
    os << "ANOVA\n";
    os << "  source       df          SS          MS           F      p\n";
    os << "  regression " << std::setw(4) << a.df_regression << std::setw(12)
       << a.ss_regression << std::setw(12) << a.ms_regression << std::setw(12)
       << a.f_statistic << std::setw(9) << std::setprecision(4) << a.f_p_value
       << std::setprecision(3) << "\n";
    os << "  residual   " << std::setw(4) << a.df_residual << std::setw(12)
       << a.ss_residual << std::setw(12) << a.ms_residual << "\n";
    os << "  total      " << std::setw(4) << (a.df_regression + a.df_residual)
       << std::setw(12) << a.ss_total << "\n";
    os << "  sigma = " << a.sigma << ", R^2 = " << std::setprecision(4)
       << a.r_squared << ", adj R^2 = " << a.adj_r_squared << "\n\n";
    os << "coefficients\n";
    os << "  term        estimate   std.err    t-value    p-value\n";
    for (const auto& c : a.coefficients) {
        os << "  " << std::left << std::setw(9) << c.term << std::right
           << std::setprecision(3) << std::setw(11) << c.estimate << std::setw(10)
           << c.std_error << std::setw(11) << c.t_value << std::setprecision(4)
           << std::setw(11) << c.p_value << (c.significant_05 ? "  *" : "") << "\n";
    }
    return os.str();
}

}  // namespace ehdse::rsm
