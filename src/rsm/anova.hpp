// Statistical assessment of a fitted response surface — the analysis the
// paper's section II explicitly omits "due to space limitations":
// regression ANOVA (F-test of overall significance), per-coefficient
// standard errors and t-tests, and prediction standard errors.
//
// Only meaningful for over-determined designs (n > p); a saturated design
// (the paper's 10-run case) has zero residual degrees of freedom and is
// rejected with a clear error.
#pragma once

#include <string>
#include <vector>

#include "rsm/quadratic_model.hpp"

namespace ehdse::rsm {

/// One fitted coefficient with its inference statistics.
struct coefficient_stat {
    std::string term;       ///< "1", "x1", "x1^2", "x1*x2", ...
    double estimate = 0.0;
    double std_error = 0.0;
    double t_value = 0.0;
    double p_value = 0.0;    ///< two-sided, H0: coefficient = 0
    bool significant_05 = false;  ///< p < 0.05
};

/// Regression analysis of variance and related diagnostics.
struct anova_result {
    // Sums of squares and degrees of freedom.
    double ss_total = 0.0;       ///< about the mean
    double ss_regression = 0.0;
    double ss_residual = 0.0;    ///< the paper's SSE (eq. 6)
    std::size_t df_regression = 0;  ///< p - 1
    std::size_t df_residual = 0;    ///< n - p

    double ms_regression = 0.0;
    double ms_residual = 0.0;    ///< sigma^2 estimate
    double f_statistic = 0.0;
    double f_p_value = 0.0;      ///< H0: all non-intercept coefficients = 0

    double sigma = 0.0;          ///< residual standard error
    double r_squared = 0.0;
    double adj_r_squared = 0.0;

    std::vector<coefficient_stat> coefficients;
};

/// Analyse a fit produced by fit_quadratic over the same points/observations.
/// Requires points.size() > term count (residual dof >= 1); throws
/// std::invalid_argument for saturated or mismatched inputs.
anova_result analyse_fit(const std::vector<numeric::vec>& points,
                         const numeric::vec& y, const fit_result& fit);

/// Standard error of the mean prediction y_hat(x) at a coded point,
/// sigma * sqrt(x_b' (X'X)^-1 x_b) with x_b the basis expansion.
double prediction_std_error(const std::vector<numeric::vec>& points,
                            const anova_result& anova, const numeric::vec& x);

/// Lack-of-fit test. When the design contains replicated points (e.g.
/// centre replicates run with different noise seeds), the residual sum of
/// squares splits into pure error (within replicate groups) and
/// lack-of-fit (between the group means and the model); their ratio tests
/// whether the quadratic form itself is inadequate.
struct lack_of_fit_result {
    double ss_lack_of_fit = 0.0;
    double ss_pure_error = 0.0;
    std::size_t df_lack_of_fit = 0;
    std::size_t df_pure_error = 0;
    double f_statistic = 0.0;
    double p_value = 1.0;          ///< small p => the quadratic is inadequate
    std::size_t replicate_groups = 0;  ///< distinct design points
    bool testable = false;  ///< needs replicates AND dof on both sides
};

/// Compute the lack-of-fit decomposition. Points closer than `tol` on
/// every coordinate count as replicates of one design point.
lack_of_fit_result lack_of_fit(const std::vector<numeric::vec>& points,
                               const numeric::vec& y, const fit_result& fit,
                               double tol = 1e-9);

/// Render the classic ANOVA table plus the coefficient table.
std::string format_anova(const anova_result& a);

}  // namespace ehdse::rsm
