// Design-parameter space and the natural <-> coded transformation
// (paper section II-A, eq. 3).
//
// Each design parameter a_i in physical units is mapped to a dimensionless
// coded variable
//     x_i = (a_i - (a_max + a_min)/2) / ((a_max - a_min)/2)
// so that the search box becomes [-1, 1]^k. (The paper's eq. 3 prints the
// denominator as (a_max + a_min)/2; with that reading the original design's
// coded point would not be the origin — we use the standard RSM half-range
// denominator, which also reproduces the paper's coded design points.)
//
// A parameter can optionally be coded on a log axis, useful when a range
// spans orders of magnitude (the clock frequency covers 125 kHz – 8 MHz);
// the paper codes linearly, which stays the default.
#pragma once

#include <string>
#include <vector>

#include "numeric/matrix.hpp"

namespace ehdse::rsm {

/// Axis scaling of one parameter.
enum class axis_scale { linear, logarithmic };

/// One design parameter with its physical range.
struct parameter_range {
    std::string name;
    double min = 0.0;
    double max = 1.0;
    axis_scale scale = axis_scale::linear;
};

/// An ordered set of design parameters with coding transforms.
class design_space {
public:
    design_space() = default;
    explicit design_space(std::vector<parameter_range> params);

    std::size_t dimension() const noexcept { return params_.size(); }
    const std::vector<parameter_range>& parameters() const noexcept { return params_; }
    const parameter_range& parameter(std::size_t i) const;

    /// Natural value -> coded value in [-1, 1] for parameter i.
    double code(std::size_t i, double natural) const;

    /// Coded value -> natural value for parameter i.
    double decode(std::size_t i, double coded) const;

    /// Vector forms of code/decode (sizes must equal dimension()).
    numeric::vec code(const numeric::vec& natural) const;
    numeric::vec decode(const numeric::vec& coded) const;

    /// Clamp a coded vector into the [-1, 1] box.
    numeric::vec clamp(numeric::vec coded) const;

    /// True when every component of the coded vector is within [-1-tol, 1+tol].
    bool contains(const numeric::vec& coded, double tol = 1e-9) const;

private:
    std::vector<parameter_range> params_;
};

}  // namespace ehdse::rsm
