// Backward-elimination model reduction for quadratic response surfaces.
//
// A full quadratic in k variables carries 1 + 2k + k(k-1)/2 terms; on a
// modest DOE most of them are noise (the ANOVA of our 16-run design keeps
// only the x3 family). Backward elimination repeatedly refits without the
// least-significant term until every remaining term clears the p-value
// threshold, yielding a sparser, better-conditioned surface. The intercept
// is never dropped.
#pragma once

#include <vector>

#include "rsm/anova.hpp"

namespace ehdse::rsm {

/// A reduced model: the surviving term indices (into the full quadratic
/// basis layout) and their coefficients. Predictions expand the point into
/// the full basis and use only the active terms.
class reduced_model {
public:
    reduced_model() = default;
    reduced_model(std::size_t dimension, std::vector<std::size_t> active_terms,
                  numeric::vec coefficients);

    std::size_t dimension() const noexcept { return k_; }
    const std::vector<std::size_t>& active_terms() const noexcept { return terms_; }
    const numeric::vec& coefficients() const noexcept { return beta_; }

    double predict(const numeric::vec& x) const;

    /// Render as "b0 + c*x3 + ..." using the quadratic term names.
    std::string to_string(int precision = 4) const;

private:
    std::size_t k_ = 0;
    std::vector<std::size_t> terms_;
    numeric::vec beta_;
};

struct stepwise_result {
    reduced_model model;
    std::vector<std::string> dropped;  ///< term names in elimination order
    double r_squared = 0.0;
    double adj_r_squared = 0.0;
    std::size_t refits = 0;
};

/// Backward elimination at significance level `alpha`. Requires an
/// over-determined design throughout (n > active term count), which holds
/// whenever the full fit is analysable.
stepwise_result backward_eliminate(const std::vector<numeric::vec>& points,
                                   const numeric::vec& y, double alpha = 0.05);

}  // namespace ehdse::rsm
