#include "rsm/kriging.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/decomp.hpp"
#include "numeric/stats.hpp"
#include "opt/nelder_mead.hpp"

namespace ehdse::rsm {

double gp_model::kernel(const numeric::vec& a, const numeric::vec& b) const {
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return params_.signal_variance *
           std::exp(-d2 / (2.0 * params_.length_scale * params_.length_scale));
}

gp_model::gp_model(std::vector<numeric::vec> points, const numeric::vec& y,
                   gp_params params)
    : points_(std::move(points)), params_(params) {
    const std::size_t n = points_.size();
    if (n == 0) throw std::invalid_argument("gp_model: empty training set");
    if (y.size() != n)
        throw std::invalid_argument("gp_model: observation count mismatch");
    if (params_.length_scale <= 0.0 || params_.signal_variance <= 0.0 ||
        params_.noise_variance < 0.0)
        throw std::invalid_argument("gp_model: invalid hyperparameters");
    for (const auto& p : points_)
        if (p.size() != points_.front().size())
            throw std::invalid_argument("gp_model: inconsistent point dimensions");

    mean_ = numeric::mean(y);
    numeric::vec centred(n);
    for (std::size_t i = 0; i < n; ++i) centred[i] = y[i] - mean_;

    numeric::matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            const double v = kernel(points_[i], points_[j]);
            k.at_unchecked(i, j) = v;
            k.at_unchecked(j, i) = v;
        }
        k.at_unchecked(i, i) += params_.noise_variance;
    }

    const numeric::cholesky_decomposition chol(k);
    if (!chol.positive_definite())
        throw std::domain_error("gp_model: kernel matrix not positive-definite "
                                "(increase the noise nugget)");
    alpha_ = chol.solve(centred);

    // Explicit inverse for the predictive variance (n is DOE-sized).
    kinv_ = numeric::matrix(n, n);
    numeric::vec e(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
        e[c] = 1.0;
        const numeric::vec col = chol.solve(e);
        e[c] = 0.0;
        for (std::size_t r = 0; r < n; ++r) kinv_.at_unchecked(r, c) = col[r];
    }

    lml_ = -0.5 * numeric::dot(centred, alpha_) - 0.5 * chol.log_determinant() -
           0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
}

double gp_model::predict(const numeric::vec& x) const {
    if (points_.empty()) throw std::logic_error("gp_model: not fitted");
    if (x.size() != points_.front().size())
        throw std::invalid_argument("gp_model::predict: dimension mismatch");
    double acc = mean_;
    for (std::size_t i = 0; i < points_.size(); ++i)
        acc += kernel(x, points_[i]) * alpha_[i];
    return acc;
}

double gp_model::predict_variance(const numeric::vec& x) const {
    if (points_.empty()) throw std::logic_error("gp_model: not fitted");
    if (x.size() != points_.front().size())
        throw std::invalid_argument("gp_model::predict_variance: dimension mismatch");
    const std::size_t n = points_.size();
    numeric::vec kstar(n);
    for (std::size_t i = 0; i < n; ++i) kstar[i] = kernel(x, points_[i]);
    const double reduction = numeric::dot(kstar, kinv_ * kstar);
    return std::max(params_.signal_variance + params_.noise_variance - reduction, 0.0);
}

gp_model fit_gp_auto(const std::vector<numeric::vec>& points,
                     const numeric::vec& y, double noise_variance,
                     std::uint64_t seed) {
    if (points.size() < 2)
        throw std::invalid_argument("fit_gp_auto: need at least 2 points");

    const double y_var = std::max(numeric::sample_variance(y), 1e-12);

    // Maximise the LML over (log l, log s2) in a generous box.
    const opt::objective_fn objective = [&](const numeric::vec& t) {
        gp_params p;
        p.length_scale = std::exp(t[0]);
        p.signal_variance = std::exp(t[1]);
        p.noise_variance = noise_variance;
        try {
            return gp_model(points, y, p).log_marginal_likelihood();
        } catch (const std::domain_error&) {
            return -1e18;  // non-SPD corner of hyperparameter space
        }
    };
    opt::box_bounds bounds{{std::log(0.05), std::log(1e-3 * y_var)},
                           {std::log(10.0), std::log(1e3 * y_var)}};
    opt::nm_options nm;
    nm.restarts = 6;
    numeric::rng rng(seed);
    const auto best = opt::nelder_mead(nm).maximize(objective, bounds, rng);

    gp_params p;
    p.length_scale = std::exp(best.best_x[0]);
    p.signal_variance = std::exp(best.best_x[1]);
    p.noise_variance = noise_variance;
    return gp_model(points, y, p);
}

}  // namespace ehdse::rsm
