#include "rsm/design_space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ehdse::rsm {

design_space::design_space(std::vector<parameter_range> params)
    : params_(std::move(params)) {
    for (const auto& p : params_) {
        if (!(p.max > p.min))
            throw std::invalid_argument("design_space: parameter '" + p.name +
                                        "' has max <= min");
        if (p.scale == axis_scale::logarithmic && p.min <= 0.0)
            throw std::invalid_argument("design_space: log-scaled parameter '" +
                                        p.name + "' needs min > 0");
    }
}

const parameter_range& design_space::parameter(std::size_t i) const {
    if (i >= params_.size()) throw std::out_of_range("design_space: bad parameter index");
    return params_[i];
}

double design_space::code(std::size_t i, double natural) const {
    const parameter_range& p = parameter(i);
    if (p.scale == axis_scale::logarithmic) {
        const double lo = std::log(p.min);
        const double hi = std::log(p.max);
        return (std::log(natural) - (hi + lo) / 2.0) / ((hi - lo) / 2.0);
    }
    const double center = (p.max + p.min) / 2.0;
    const double half_range = (p.max - p.min) / 2.0;
    return (natural - center) / half_range;
}

double design_space::decode(std::size_t i, double coded) const {
    const parameter_range& p = parameter(i);
    if (p.scale == axis_scale::logarithmic) {
        const double lo = std::log(p.min);
        const double hi = std::log(p.max);
        return std::exp((hi + lo) / 2.0 + coded * (hi - lo) / 2.0);
    }
    const double center = (p.max + p.min) / 2.0;
    const double half_range = (p.max - p.min) / 2.0;
    return center + coded * half_range;
}

numeric::vec design_space::code(const numeric::vec& natural) const {
    if (natural.size() != params_.size())
        throw std::invalid_argument("design_space::code: dimension mismatch");
    numeric::vec out(natural.size());
    for (std::size_t i = 0; i < natural.size(); ++i) out[i] = code(i, natural[i]);
    return out;
}

numeric::vec design_space::decode(const numeric::vec& coded) const {
    if (coded.size() != params_.size())
        throw std::invalid_argument("design_space::decode: dimension mismatch");
    numeric::vec out(coded.size());
    for (std::size_t i = 0; i < coded.size(); ++i) out[i] = decode(i, coded[i]);
    return out;
}

numeric::vec design_space::clamp(numeric::vec coded) const {
    if (coded.size() != params_.size())
        throw std::invalid_argument("design_space::clamp: dimension mismatch");
    for (double& x : coded) x = std::clamp(x, -1.0, 1.0);
    return coded;
}

bool design_space::contains(const numeric::vec& coded, double tol) const {
    if (coded.size() != params_.size()) return false;
    return std::all_of(coded.begin(), coded.end(), [tol](double x) {
        return x >= -1.0 - tol && x <= 1.0 + tol;
    });
}

}  // namespace ehdse::rsm
