// Variance-based (Sobol) sensitivity decomposition of a quadratic response
// surface over the coded box with independent uniform inputs on [-1, 1].
//
// For y = b0 + sum bi xi + sum bii xi^2 + sum bij xi xj the ANOVA-HDMR
// decomposition is closed-form:
//   main effect of xi:    f_i = bi xi + bii (xi^2 - 1/3)
//       V_i  = bi^2 / 3 + bii^2 * 4/45
//   interaction (i, j):   f_ij = bij xi xj
//       V_ij = bij^2 / 9
// so the first-order index S_i = V_i / V and the total index
// ST_i = (V_i + sum_j V_ij) / V need no sampling at all. This turns the
// paper's qualitative Fig. 4 reading ("x3 dominates") into numbers.
#pragma once

#include "rsm/quadratic_model.hpp"

namespace ehdse::rsm {

/// Sobol decomposition of a quadratic model.
struct sensitivity_result {
    double total_variance = 0.0;
    numeric::vec main_effect_variance;   ///< V_i, size k
    numeric::matrix interaction_variance;  ///< V_ij (symmetric, zero diagonal)
    numeric::vec first_order;            ///< S_i
    numeric::vec total_order;            ///< ST_i
};

/// Analytic Sobol indices of `model` with xi ~ U(-1, 1) independent.
/// A constant model (zero variance) returns all-zero indices.
sensitivity_result sobol_indices(const quadratic_model& model);

/// Monte-Carlo estimate of the model's output variance (validation path
/// for the analytic decomposition; n samples, seeded).
double monte_carlo_variance(const quadratic_model& model, std::size_t n,
                            std::uint64_t seed);

}  // namespace ehdse::rsm
