#include "rsm/sensitivity.hpp"

#include "numeric/rng.hpp"
#include "numeric/stats.hpp"

namespace ehdse::rsm {

sensitivity_result sobol_indices(const quadratic_model& model) {
    const std::size_t k = model.dimension();
    sensitivity_result out;
    out.main_effect_variance.assign(k, 0.0);
    out.interaction_variance = numeric::matrix(k, k, 0.0);
    out.first_order.assign(k, 0.0);
    out.total_order.assign(k, 0.0);

    // Moments of U(-1,1): Var(x) = 1/3, Var(x^2) = 4/45, Var(x_i x_j) = 1/9.
    for (std::size_t i = 0; i < k; ++i) {
        const double bi = model.linear(i);
        const double bii = model.quadratic(i);
        out.main_effect_variance[i] = bi * bi / 3.0 + bii * bii * 4.0 / 45.0;
        out.total_variance += out.main_effect_variance[i];
    }
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = i + 1; j < k; ++j) {
            const double bij = model.interaction(i, j);
            const double vij = bij * bij / 9.0;
            out.interaction_variance(i, j) = vij;
            out.interaction_variance(j, i) = vij;
            out.total_variance += vij;
        }

    if (out.total_variance <= 0.0) return out;  // constant model
    for (std::size_t i = 0; i < k; ++i) {
        out.first_order[i] = out.main_effect_variance[i] / out.total_variance;
        double total = out.main_effect_variance[i];
        for (std::size_t j = 0; j < k; ++j)
            if (j != i) total += out.interaction_variance(i, j);
        out.total_order[i] = total / out.total_variance;
    }
    return out;
}

double monte_carlo_variance(const quadratic_model& model, std::size_t n,
                            std::uint64_t seed) {
    numeric::rng rng(seed);
    std::vector<double> ys;
    ys.reserve(n);
    numeric::vec x(model.dimension());
    for (std::size_t s = 0; s < n; ++s) {
        for (double& xi : x) xi = rng.uniform(-1.0, 1.0);
        ys.push_back(model.predict(x));
    }
    return numeric::sample_variance(ys);
}

}  // namespace ehdse::rsm
