#include "rsm/surrogate.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "numeric/stats.hpp"
#include "rsm/kriging.hpp"
#include "rsm/quadratic_model.hpp"
#include "rsm/stepwise.hpp"

namespace ehdse::rsm {

namespace {

void check_shapes(const std::vector<numeric::vec>& points,
                  const numeric::vec& y, const char* who) {
    if (points.empty())
        throw std::invalid_argument(std::string(who) + ": no design points");
    if (points.size() != y.size())
        throw std::invalid_argument(std::string(who) +
                                    ": observation count mismatch");
    for (const auto& p : points)
        if (p.size() != points.front().size())
            throw std::invalid_argument(std::string(who) +
                                        ": inconsistent point dimensions");
}

// ---- Fitted-surface adapters -------------------------------------------

class quadratic_surface final : public fitted_surface {
public:
    explicit quadratic_surface(fit_result fit) : fit_(std::move(fit)) {}

    std::size_t dimension() const noexcept override {
        return fit_.model.dimension();
    }
    double predict(const numeric::vec& x) const override {
        return fit_.model.predict(x);
    }
    std::string to_string(int precision) const override {
        return fit_.model.to_string(precision);
    }
    obs::json_value describe() const override {
        obs::json_value out{obs::json_object{}};
        out.set("kind", "quadratic");
        out.set("dimension", fit_.model.dimension());
        obs::json_array coeffs;
        for (double b : fit_.model.coefficients()) coeffs.push_back(b);
        out.set("coefficients", std::move(coeffs));
        return out;
    }

    const fit_result& result() const noexcept { return fit_; }

private:
    fit_result fit_;
};

class stepwise_surface final : public fitted_surface {
public:
    stepwise_surface(stepwise_result fit, std::size_t dimension)
        : fit_(std::move(fit)), k_(dimension) {}

    std::size_t dimension() const noexcept override { return k_; }
    double predict(const numeric::vec& x) const override {
        return fit_.model.predict(x);
    }
    std::string to_string(int precision) const override {
        return fit_.model.to_string(precision);
    }
    obs::json_value describe() const override {
        obs::json_value out{obs::json_object{}};
        out.set("kind", "stepwise");
        out.set("dimension", k_);
        obs::json_array terms;
        for (std::size_t t : fit_.model.active_terms())
            terms.push_back(quadratic_term_name(k_, t));
        out.set("active_terms", std::move(terms));
        obs::json_array coeffs;
        for (double b : fit_.model.coefficients()) coeffs.push_back(b);
        out.set("coefficients", std::move(coeffs));
        obs::json_array dropped;
        for (const std::string& name : fit_.dropped) dropped.push_back(name);
        out.set("dropped", std::move(dropped));
        out.set("refits", fit_.refits);
        return out;
    }

private:
    stepwise_result fit_;
    std::size_t k_;
};

class gp_surface final : public fitted_surface {
public:
    gp_surface(gp_model model, std::size_t dimension)
        : model_(std::move(model)), k_(dimension) {}

    std::size_t dimension() const noexcept override { return k_; }
    double predict(const numeric::vec& x) const override {
        return model_.predict(x);
    }
    bool has_variance() const noexcept override { return true; }
    double predict_variance(const numeric::vec& x) const override {
        return model_.predict_variance(x);
    }
    std::string to_string(int precision) const override {
        std::ostringstream os;
        os.precision(precision);
        const gp_params& p = model_.params();
        os << "GP(l = " << p.length_scale << ", s^2 = " << p.signal_variance
           << ", nugget = " << p.noise_variance
           << "; lml = " << model_.log_marginal_likelihood() << ")";
        return os.str();
    }
    obs::json_value describe() const override {
        obs::json_value out{obs::json_object{}};
        out.set("kind", "gp");
        out.set("dimension", k_);
        out.set("length_scale", model_.params().length_scale);
        out.set("signal_variance", model_.params().signal_variance);
        out.set("noise_variance", model_.params().noise_variance);
        out.set("log_marginal_likelihood", model_.log_marginal_likelihood());
        out.set("training_size", model_.training_size());
        return out;
    }

private:
    gp_model model_;
    std::size_t k_;
};

// ---- Surrogate families ------------------------------------------------

class quadratic_surrogate final : public surrogate_model {
public:
    std::string name() const override { return "quadratic"; }
    std::string description() const override {
        return "full quadratic response surface, least squares (paper eq. 9)";
    }

    /// The quadratic fit reuses fit_quadratic's own diagnostics verbatim —
    /// identical numbers to the pre-registry flow, and the hat-matrix PRESS
    /// (exact leave-one-out for a linear model) instead of n refits.
    surrogate_fit fit(const std::vector<numeric::vec>& points,
                      const numeric::vec& y) const override {
        check_shapes(points, y, "rsm::surrogate[quadratic]");
        fit_result f = fit_quadratic(points, y);
        surrogate_fit out;
        out.surrogate = name();
        out.fitted = f.fitted;
        out.residuals = f.residuals;
        out.sse = f.sse;
        out.r_squared = f.r_squared;
        out.adj_r_squared = f.adj_r_squared;
        out.loo_rmse = f.press_rmse;
        out.surface = std::make_shared<quadratic_surface>(std::move(f));
        return out;
    }

protected:
    std::shared_ptr<const fitted_surface> fit_surface(
        const std::vector<numeric::vec>& points, const numeric::vec& y,
        std::size_t& effective_terms) const override {
        effective_terms = quadratic_term_count(points.front().size());
        return std::make_shared<quadratic_surface>(fit_quadratic(points, y));
    }
};

class stepwise_surrogate final : public surrogate_model {
public:
    std::string name() const override { return "stepwise"; }
    std::string description() const override {
        return "backward-eliminated quadratic (needs runs > term count)";
    }

protected:
    std::shared_ptr<const fitted_surface> fit_surface(
        const std::vector<numeric::vec>& points, const numeric::vec& y,
        std::size_t& effective_terms) const override {
        stepwise_result f = backward_eliminate(points, y);
        effective_terms = f.model.active_terms().size();
        return std::make_shared<stepwise_surface>(std::move(f),
                                                  points.front().size());
    }
};

class gp_surrogate final : public surrogate_model {
public:
    std::string name() const override { return "gp"; }
    std::string description() const override {
        return "Gaussian process, squared-exponential kernel, "
               "likelihood-tuned hyperparameters";
    }

protected:
    std::shared_ptr<const fitted_surface> fit_surface(
        const std::vector<numeric::vec>& points, const numeric::vec& y,
        std::size_t& effective_terms) const override {
        // Nugget scaled to the response spread so counts in the hundreds
        // and unit-scale responses condition the kernel matrix equally.
        const double nugget =
            std::max(1e-8, 1e-6 * numeric::sample_variance(y));
        gp_model model = fit_gp_auto(points, y, nugget);
        effective_terms = 3;  // length scale, signal variance, mean
        return std::make_shared<gp_surface>(std::move(model),
                                            points.front().size());
    }
};

}  // namespace

double fitted_surface::predict_variance(const numeric::vec&) const {
    throw std::logic_error(
        "fitted_surface::predict_variance: this surface has no variance "
        "model (check has_variance())");
}

const fit_result* surrogate_fit::quadratic() const noexcept {
    const auto* q = dynamic_cast<const quadratic_surface*>(surface.get());
    return q ? &q->result() : nullptr;
}

obs::json_value surrogate_fit::diagnostics() const {
    obs::json_value out{obs::json_object{}};
    out.set("surrogate", surrogate);
    out.set("r_squared", r_squared);
    out.set("adj_r_squared", adj_r_squared);
    out.set("sse", sse);
    out.set("loo_rmse", loo_rmse);  // null in JSON when non-finite
    if (surface) out.set("model", surface->describe());
    return out;
}

surrogate_fit surrogate_model::fit(const std::vector<numeric::vec>& points,
                                   const numeric::vec& y) const {
    check_shapes(points, y, "rsm::surrogate_model::fit");
    surrogate_fit out;
    out.surrogate = name();
    std::size_t effective_terms = 0;
    out.surface = fit_surface(points, y, effective_terms);

    const std::size_t n = y.size();
    out.fitted.resize(n);
    out.residuals.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.fitted[i] = out.surface->predict(points[i]);
        out.residuals[i] = y[i] - out.fitted[i];
    }
    out.sse = numeric::residual_sum_squares(y, out.fitted);
    out.r_squared = numeric::r_squared(y, out.fitted);
    out.adj_r_squared = numeric::adjusted_r_squared(y, out.fitted,
                                                    effective_terms);
    out.loo_rmse = loo_rmse(points, y);
    return out;
}

double surrogate_model::loo_rmse(const std::vector<numeric::vec>& points,
                                 const numeric::vec& y) const {
    const std::size_t n = y.size();
    if (n < 3) return std::numeric_limits<double>::infinity();
    double sum_sq = 0.0;
    for (std::size_t holdout = 0; holdout < n; ++holdout) {
        std::vector<numeric::vec> fold_points;
        numeric::vec fold_y;
        fold_points.reserve(n - 1);
        fold_y.reserve(n - 1);
        for (std::size_t i = 0; i < n; ++i) {
            if (i == holdout) continue;
            fold_points.push_back(points[i]);
            fold_y.push_back(y[i]);
        }
        try {
            std::size_t terms = 0;
            const auto surface = fit_surface(fold_points, fold_y, terms);
            const double e = y[holdout] - surface->predict(points[holdout]);
            sum_sq += e * e;
        } catch (const std::exception&) {
            // A fold this family cannot fit (too few runs, singular
            // design): leave-one-out is undefined at this budget.
            return std::numeric_limits<double>::infinity();
        }
    }
    return std::sqrt(sum_sq / static_cast<double>(n));
}

const std::vector<surrogate_info>& surrogate_registry() {
    static const std::vector<surrogate_info> registry = [] {
        std::vector<surrogate_info> out;
        for (const auto& model :
             {std::shared_ptr<surrogate_model>(
                  std::make_shared<quadratic_surrogate>()),
              std::shared_ptr<surrogate_model>(
                  std::make_shared<stepwise_surrogate>()),
              std::shared_ptr<surrogate_model>(
                  std::make_shared<gp_surrogate>())})
            out.push_back({model->name(), model->description()});
        return out;
    }();
    return registry;
}

bool is_known_surrogate(std::string_view name) noexcept {
    for (const auto& info : surrogate_registry())
        if (info.name == name) return true;
    return false;
}

std::string surrogate_names() {
    std::string out;
    for (const auto& info : surrogate_registry()) {
        if (!out.empty()) out += ", ";
        out += info.name;
    }
    return out;
}

std::shared_ptr<surrogate_model> make_surrogate(std::string_view name) {
    if (name == "quadratic") return std::make_shared<quadratic_surrogate>();
    if (name == "stepwise") return std::make_shared<stepwise_surrogate>();
    if (name == "gp") return std::make_shared<gp_surrogate>();
    throw std::invalid_argument("rsm::make_surrogate: unknown surrogate '" +
                                std::string(name) + "' (valid: " +
                                surrogate_names() + ")");
}

}  // namespace ehdse::rsm
