// Pluggable surrogate models behind one interface — the paper's pipeline
// (design selection -> simulation -> surface fit -> optimisation) always
// fits *some* surface to the DOE responses; this layer makes the fit
// stage selectable by name so the quadratic RSM of eq. 9 can be swapped
// for the stepwise-reduced polynomial or the Gaussian-process surrogate
// without touching the flow.
//
// A surrogate_model fits points/responses and returns a surrogate_fit:
// a polymorphic fitted_surface handle plus diagnostics computed the SAME
// way for every model kind (R², adjusted R², leave-one-out CV RMSE), so
// cross-model comparisons (bench_ext_surrogates, Table VI under GP vs
// quadratic) read one set of numbers. Models resolve through
// make_surrogate(name), mirroring opt::make_optimizer; the registered
// names travel through spec::flow_spec::surrogate.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "numeric/matrix.hpp"
#include "obs/json.hpp"

namespace ehdse::rsm {

struct fit_result;  // rsm/quadratic_model.hpp

/// A fitted response surface over the coded box: the thing the optimise
/// phase maximises. Implementations are immutable after construction and
/// predict() is safe to call concurrently (the parallel flow fans the
/// optimiser's candidate batches over a pool).
class fitted_surface {
public:
    virtual ~fitted_surface() = default;

    /// Input dimension (number of coded variables).
    virtual std::size_t dimension() const noexcept = 0;

    /// Predicted response at a coded point.
    virtual double predict(const numeric::vec& x) const = 0;

    /// Whether predict_variance is meaningful for this surface.
    virtual bool has_variance() const noexcept { return false; }

    /// Predictive variance at a coded point. Throws std::logic_error
    /// unless has_variance().
    virtual double predict_variance(const numeric::vec& x) const;

    /// Human-readable equation / parameter summary for reports.
    virtual std::string to_string(int precision = 4) const = 0;

    /// Structured model description (kind, coefficients or
    /// hyperparameters) for run manifests.
    virtual obs::json_value describe() const = 0;
};

/// A fitted surface plus diagnostics computed uniformly across model
/// kinds. `surface` is shared so flow results stay copyable.
struct surrogate_fit {
    std::string surrogate;  ///< registry name of the model that fitted this
    std::shared_ptr<const fitted_surface> surface;
    numeric::vec fitted;     ///< prediction at each training point
    numeric::vec residuals;  ///< y - fitted
    double sse = 0.0;
    double r_squared = 0.0;
    double adj_r_squared = 0.0;
    /// Leave-one-out cross-validation RMSE: refit without each point,
    /// predict it, RMS over the held-out errors. +inf when any fold is
    /// unfittable (e.g. a saturated quadratic design), NaN before fit.
    double loo_rmse = std::numeric_limits<double>::quiet_NaN();

    /// Convenience forward to the surface.
    double predict(const numeric::vec& x) const { return surface->predict(x); }

    /// The underlying quadratic fit when this surface is the paper's
    /// quadratic RSM, nullptr for every other surrogate — the gate the
    /// quadratic-only consumers (ANOVA, lack-of-fit, Sobol indices) check
    /// before downcasting.
    const fit_result* quadratic() const noexcept;

    /// Uniform diagnostics + surface description as one JSON object (the
    /// manifest's "fit" option). Non-finite values serialise as null.
    obs::json_value diagnostics() const;
};

/// A named, fittable surrogate family. fit() validates shapes, delegates
/// to the concrete fitter, and computes the shared diagnostics.
class surrogate_model {
public:
    virtual ~surrogate_model() = default;

    virtual std::string name() const = 0;
    virtual std::string description() const = 0;

    /// Fit to observations y at coded design points. Throws
    /// std::invalid_argument on shape mismatches or a design the family
    /// cannot fit (message says why).
    virtual surrogate_fit fit(const std::vector<numeric::vec>& points,
                              const numeric::vec& y) const;

protected:
    /// Fit the surface only; `effective_terms` receives the coefficient /
    /// hyperparameter count used for adjusted R².
    virtual std::shared_ptr<const fitted_surface> fit_surface(
        const std::vector<numeric::vec>& points, const numeric::vec& y,
        std::size_t& effective_terms) const = 0;

    /// Generic refit-per-fold leave-one-out CV (used by the default fit());
    /// +inf when any fold refuses to fit.
    double loo_rmse(const std::vector<numeric::vec>& points,
                    const numeric::vec& y) const;
};

/// One registry row: the spellings --list-surrogates prints.
struct surrogate_info {
    std::string name;
    std::string description;
};

/// Registered surrogate families, in presentation order:
/// "quadratic" (paper eq. 9), "stepwise", "gp".
const std::vector<surrogate_info>& surrogate_registry();

/// True when `name` is a registered surrogate.
bool is_known_surrogate(std::string_view name) noexcept;

/// Comma-separated registered names, for error messages.
std::string surrogate_names();

/// Construct a surrogate by registry name. Throws std::invalid_argument
/// naming the offender and listing the valid choices.
std::shared_ptr<surrogate_model> make_surrogate(std::string_view name);

}  // namespace ehdse::rsm
