// Quadratic response-surface model (paper section II-A, eqs. 4-7).
//
//   y_hat = b0 + sum_i b_i x_i + sum_i b_ii x_i^2 + sum_{i<j} b_ij x_i x_j
//
// Coefficients are estimated by least squares on the design matrix X whose
// rows are the basis expansion of each coded design point — solved through
// Householder QR rather than forming the normal equations (better
// conditioned; identical result to the paper's LSM in exact arithmetic).
#pragma once

#include <string>
#include <vector>

#include "numeric/matrix.hpp"

namespace ehdse::rsm {

/// Basis expansion of one coded point for a full quadratic in k variables:
/// [1, x1..xk, x1^2..xk^2, x1x2, x1x3, ..., x_{k-1}x_k].
/// Term count p = 1 + 2k + k(k-1)/2.
numeric::vec quadratic_basis(const numeric::vec& x);

/// Number of quadratic model terms for dimension k.
std::size_t quadratic_term_count(std::size_t k);

/// Human-readable name of term index t for dimension k ("1", "x1", "x1^2",
/// "x1*x2", ...), matching the layout of quadratic_basis.
std::string quadratic_term_name(std::size_t k, std::size_t t);

/// Build the n x p design matrix from n coded design points.
numeric::matrix build_design_matrix(const std::vector<numeric::vec>& points);

/// A fitted quadratic polynomial in coded variables.
class quadratic_model {
public:
    quadratic_model() = default;

    /// Construct from dimension + coefficient vector (layout of
    /// quadratic_basis). Throws on size mismatch.
    quadratic_model(std::size_t dimension, numeric::vec coefficients);

    std::size_t dimension() const noexcept { return k_; }
    const numeric::vec& coefficients() const noexcept { return beta_; }

    /// Evaluate y_hat at a coded point.
    double predict(const numeric::vec& x) const;

    /// Gradient of y_hat at a coded point (size k).
    numeric::vec gradient(const numeric::vec& x) const;

    /// Coefficient accessors by role.
    double intercept() const;
    double linear(std::size_t i) const;
    double quadratic(std::size_t i) const;
    double interaction(std::size_t i, std::size_t j) const;

    /// Render as "b0 + b1*x1 + ..." for reports.
    std::string to_string(int precision = 4) const;

private:
    std::size_t k_ = 0;
    numeric::vec beta_;
};

/// Fit outcome with the statistical diagnostics the methodology section
/// mentions (goodness of fit / model reliability).
struct fit_result {
    quadratic_model model;
    numeric::vec fitted;      ///< y_hat at each design point
    numeric::vec residuals;   ///< y - y_hat
    double sse = 0.0;         ///< paper eq. 6
    double r_squared = 0.0;
    double adj_r_squared = 0.0;
    double press = 0.0;       ///< leave-one-out PRESS statistic
    double press_rmse = 0.0;  ///< sqrt(PRESS / n)
};

/// Fit a quadratic RSM to observations y at coded design points.
/// Requires points.size() >= term count and a full-rank design.
fit_result fit_quadratic(const std::vector<numeric::vec>& points,
                         const numeric::vec& y);

}  // namespace ehdse::rsm
