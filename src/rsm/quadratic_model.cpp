#include "rsm/quadratic_model.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "numeric/decomp.hpp"
#include "numeric/stats.hpp"

namespace ehdse::rsm {

std::size_t quadratic_term_count(std::size_t k) {
    return 1 + 2 * k + k * (k - 1) / 2;
}

numeric::vec quadratic_basis(const numeric::vec& x) {
    const std::size_t k = x.size();
    numeric::vec b;
    b.reserve(quadratic_term_count(k));
    b.push_back(1.0);
    for (double xi : x) b.push_back(xi);
    for (double xi : x) b.push_back(xi * xi);
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = i + 1; j < k; ++j) b.push_back(x[i] * x[j]);
    return b;
}

std::string quadratic_term_name(std::size_t k, std::size_t t) {
    if (t == 0) return "1";
    if (t <= k) return "x" + std::to_string(t);
    if (t <= 2 * k) return "x" + std::to_string(t - k) + "^2";
    std::size_t idx = t - 2 * k - 1;
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = i + 1; j < k; ++j) {
            if (idx == 0)
                return "x" + std::to_string(i + 1) + "*x" + std::to_string(j + 1);
            --idx;
        }
    throw std::out_of_range("quadratic_term_name: term index out of range");
}

numeric::matrix build_design_matrix(const std::vector<numeric::vec>& points) {
    if (points.empty())
        throw std::invalid_argument("build_design_matrix: no design points");
    numeric::matrix x;
    for (const auto& p : points) {
        if (p.size() != points.front().size())
            throw std::invalid_argument("build_design_matrix: inconsistent point dimensions");
        x.append_row(quadratic_basis(p));
    }
    return x;
}

quadratic_model::quadratic_model(std::size_t dimension, numeric::vec coefficients)
    : k_(dimension), beta_(std::move(coefficients)) {
    if (beta_.size() != quadratic_term_count(k_))
        throw std::invalid_argument("quadratic_model: coefficient count mismatch");
}

double quadratic_model::predict(const numeric::vec& x) const {
    if (x.size() != k_)
        throw std::invalid_argument("quadratic_model::predict: dimension mismatch");
    return numeric::dot(beta_, quadratic_basis(x));
}

numeric::vec quadratic_model::gradient(const numeric::vec& x) const {
    if (x.size() != k_)
        throw std::invalid_argument("quadratic_model::gradient: dimension mismatch");
    numeric::vec g(k_, 0.0);
    for (std::size_t i = 0; i < k_; ++i)
        g[i] = linear(i) + 2.0 * quadratic(i) * x[i];
    for (std::size_t i = 0; i < k_; ++i)
        for (std::size_t j = i + 1; j < k_; ++j) {
            const double bij = interaction(i, j);
            g[i] += bij * x[j];
            g[j] += bij * x[i];
        }
    return g;
}

double quadratic_model::intercept() const { return beta_.at(0); }

double quadratic_model::linear(std::size_t i) const {
    if (i >= k_) throw std::out_of_range("quadratic_model::linear");
    return beta_[1 + i];
}

double quadratic_model::quadratic(std::size_t i) const {
    if (i >= k_) throw std::out_of_range("quadratic_model::quadratic");
    return beta_[1 + k_ + i];
}

double quadratic_model::interaction(std::size_t i, std::size_t j) const {
    if (i == j || i >= k_ || j >= k_)
        throw std::out_of_range("quadratic_model::interaction");
    if (i > j) std::swap(i, j);
    // Offset of pair (i, j) in the i<j enumeration order.
    std::size_t idx = 0;
    for (std::size_t a = 0; a < i; ++a) idx += k_ - 1 - a;
    idx += j - i - 1;
    return beta_[1 + 2 * k_ + idx];
}

std::string quadratic_model::to_string(int precision) const {
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed;
    const std::size_t p = beta_.size();
    for (std::size_t t = 0; t < p; ++t) {
        const double b = beta_[t];
        if (t == 0) {
            os << b;
            continue;
        }
        os << (b >= 0.0 ? " + " : " - ") << std::abs(b) << "*"
           << quadratic_term_name(k_, t);
    }
    return os.str();
}

fit_result fit_quadratic(const std::vector<numeric::vec>& points,
                         const numeric::vec& y) {
    if (points.size() != y.size())
        throw std::invalid_argument("fit_quadratic: observation count mismatch");
    const std::size_t k = points.front().size();
    const std::size_t p = quadratic_term_count(k);
    if (points.size() < p)
        throw std::invalid_argument(
            "fit_quadratic: need at least " + std::to_string(p) +
            " runs for a quadratic in " + std::to_string(k) + " variables");

    const numeric::matrix x = build_design_matrix(points);
    const numeric::qr_decomposition qr(x);
    if (qr.rank_deficient())
        throw std::domain_error(
            "fit_quadratic: design matrix is rank-deficient — the design "
            "points do not support a full quadratic model");

    fit_result out;
    out.model = quadratic_model(k, qr.solve(y));
    out.fitted = x * out.model.coefficients();
    out.residuals = numeric::sub(y, out.fitted);
    out.sse = numeric::residual_sum_squares(y, out.fitted);
    out.r_squared = numeric::r_squared(y, out.fitted);
    out.adj_r_squared = numeric::adjusted_r_squared(y, out.fitted, p);

    // PRESS via the hat matrix: e_loo,i = e_i / (1 - h_ii). For saturated
    // designs (n == p) every h_ii is 1 and PRESS is undefined; report inf.
    const numeric::matrix info = x.gram();
    const numeric::lu_decomposition lu(info);
    if (!lu.singular()) {
        const numeric::matrix info_inv = lu.inverse();
        double press = 0.0;
        bool saturated = false;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const numeric::vec bi = quadratic_basis(points[i]);
            const double h = numeric::dot(bi, info_inv * bi);
            if (h >= 1.0 - 1e-9) {
                saturated = true;
                break;
            }
            const double e = out.residuals[i] / (1.0 - h);
            press += e * e;
        }
        if (saturated) {
            out.press = std::numeric_limits<double>::infinity();
            out.press_rmse = std::numeric_limits<double>::infinity();
        } else {
            out.press = press;
            out.press_rmse = std::sqrt(press / static_cast<double>(points.size()));
        }
    }
    return out;
}

}  // namespace ehdse::rsm
