// Per-worker work-stealing deque for exec::thread_pool: the owning worker
// pushes and pops at the back (LIFO — the most recently produced task is
// the cache-warmest), thieves take from the front (FIFO — the oldest task
// has waited longest and is least likely to conflict with the owner).
//
// The deque is mutex-guarded rather than lock-free: pool tasks here are
// whole-system simulations (milliseconds to seconds each), so one short
// critical section per push/pop is invisible next to the work itself, and
// the simple implementation is trivially correct under TSan.
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <mutex>

namespace ehdse::exec {

/// Unit of work accepted by thread_pool.
using task_fn = std::function<void()>;

namespace detail {

struct task_item {
    task_fn fn;
    /// Set at submit time only when the pool has a wait histogram attached;
    /// default-constructed (and never read) otherwise.
    std::chrono::steady_clock::time_point enqueued{};
};

class task_queue {
public:
    /// Append at the owner end.
    void push(task_item item) {
        std::lock_guard<std::mutex> lock(mutex_);
        deque_.push_back(std::move(item));
    }

    /// Owner end (back, LIFO). Returns false when empty.
    bool pop(task_item& out) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (deque_.empty()) return false;
        out = std::move(deque_.back());
        deque_.pop_back();
        return true;
    }

    /// Thief end (front, FIFO). Returns false when empty.
    bool steal(task_item& out) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (deque_.empty()) return false;
        out = std::move(deque_.front());
        deque_.pop_front();
        return true;
    }

private:
    mutable std::mutex mutex_;
    std::deque<task_item> deque_;
};

}  // namespace detail
}  // namespace ehdse::exec
