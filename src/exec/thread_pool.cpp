#include "exec/thread_pool.hpp"

#include <latch>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace ehdse::exec {

namespace {

// Worker identity for on_worker_thread() / nested-submit routing.
thread_local const thread_pool* t_current_pool = nullptr;
thread_local std::size_t t_worker_index = 0;

}  // namespace

std::size_t default_concurrency() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

thread_pool::thread_pool(std::size_t threads) {
    const std::size_t n = threads == 0 ? default_concurrency() : threads;
    if (auto* registry = obs::global_registry()) {
        tasks_counter_ = &registry->get_counter("exec.pool.tasks");
        steal_counter_ = &registry->get_counter("exec.pool.steals");
        depth_gauge_ = &registry->get_gauge("exec.pool.queue_depth");
        wait_hist_ = &registry->get_histogram("exec.pool.task_wait_seconds");
        run_hist_ = &registry->get_histogram("exec.pool.task_run_seconds");
        registry->get_gauge("exec.pool.workers").set(static_cast<double>(n));
    }
    queues_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<detail::task_queue>());
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

thread_pool::~thread_pool() {
    {
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        stop_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
}

bool thread_pool::on_worker_thread() const noexcept {
    return t_current_pool == this;
}

void thread_pool::submit(task_fn task) {
    if (!task) throw std::invalid_argument("thread_pool::submit: empty task");
    if (stop_.load(std::memory_order_acquire))
        throw std::logic_error("thread_pool::submit: pool is shutting down");

    detail::task_item item{std::move(task), {}};
    if (wait_hist_) item.enqueued = std::chrono::steady_clock::now();

    const std::size_t index =
        on_worker_thread()
            ? t_worker_index
            : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                  queues_.size();
    queues_[index]->push(std::move(item));

    submitted_.fetch_add(1, std::memory_order_relaxed);
    if (tasks_counter_) tasks_counter_->add();
    const std::size_t depth =
        queued_.fetch_add(1, std::memory_order_release) + 1;
    if (depth_gauge_) depth_gauge_->set(static_cast<double>(depth));

    // Empty critical section: pairs with the worker's predicate check so a
    // notify cannot slip between "queue looked empty" and "wait".
    { std::lock_guard<std::mutex> lock(sleep_mutex_); }
    wake_.notify_one();
}

void thread_pool::note_dequeue() {
    const std::size_t depth =
        queued_.fetch_sub(1, std::memory_order_acquire) - 1;
    if (depth_gauge_) depth_gauge_->set(static_cast<double>(depth));
}

bool thread_pool::try_get_task(std::size_t index, detail::task_item& out) {
    if (queues_[index]->pop(out)) {
        note_dequeue();
        return true;
    }
    const std::size_t n = queues_.size();
    for (std::size_t offset = 1; offset < n; ++offset) {
        if (queues_[(index + offset) % n]->steal(out)) {
            stolen_.fetch_add(1, std::memory_order_relaxed);
            if (steal_counter_) steal_counter_->add();
            note_dequeue();
            return true;
        }
    }
    return false;
}

void thread_pool::run_task(detail::task_item& item) {
    // Count before invoking: the task's future resolves inside fn(), so a
    // thread joining on that future must already see the task accounted
    // for — counting afterwards races the counter against the join.
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (wait_hist_)
        wait_hist_->observe(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - item.enqueued)
                                .count());
    if (run_hist_) {
        const auto start = std::chrono::steady_clock::now();
        item.fn();
        run_hist_->observe(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    } else {
        item.fn();
    }
    item.fn = nullptr;
}

void thread_pool::worker_loop(std::size_t index) {
    t_current_pool = this;
    t_worker_index = index;
    detail::task_item item;
    while (true) {
        if (try_get_task(index, item)) {
            run_task(item);
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        wake_.wait(lock, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   queued_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire) &&
            queued_.load(std::memory_order_acquire) == 0)
            return;
    }
}

void thread_pool::parallel_for(std::size_t n,
                               const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    if (n == 1 || on_worker_thread()) {
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }

    const std::size_t chunks = std::min(n, size() * 4);
    std::latch done(static_cast<std::ptrdiff_t>(chunks));
    std::mutex error_mutex;
    std::exception_ptr first_error;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = n * c / chunks;
        const std::size_t end = n * (c + 1) / chunks;
        submit([&, begin, end] {
            try {
                for (std::size_t i = begin; i < end; ++i) body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
            done.count_down();
        });
    }
    done.wait();
    if (first_error) std::rethrow_exception(first_error);
}

thread_pool::totals thread_pool::counters() const noexcept {
    return {submitted_.load(std::memory_order_relaxed),
            executed_.load(std::memory_order_relaxed),
            stolen_.load(std::memory_order_relaxed)};
}

}  // namespace ehdse::exec
