#include "exec/batch.hpp"

namespace ehdse::exec {

void parallel_for(thread_pool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
    if (pool == nullptr || n < 2 || pool->size() < 2) {
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }
    pool->parallel_for(n, body);
}

}  // namespace ehdse::exec
