// Fixed-size work-stealing thread pool — the shared execution engine
// behind the flow's design-point fan-out, optimiser batch evaluation and
// the robustness sweep. Replaces the old one-std::async-per-job pattern:
// the worker count is bounded by construction (`--jobs N` at the CLI), so
// a 24-replicate flow on a 4-core laptop runs 4 threads, not 240.
//
// Scheduling: one deque per worker (see task_queue.hpp). Workers pop their
// own deque LIFO and steal FIFO from the others when empty; external
// submitters round-robin across deques, worker-side submissions go to the
// submitting worker's own deque.
//
// Observability (resolved once at construction, iff a global metrics
// registry is installed — install the registry *before* building the
// pool): exec.pool.workers / exec.pool.queue_depth gauges,
// exec.pool.tasks / exec.pool.steals counters, and
// exec.pool.task_wait_seconds / exec.pool.task_run_seconds histograms.
// With no registry attached the pool never reads a clock per task.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "exec/task_queue.hpp"

namespace ehdse::obs {
class counter;
class gauge;
class histogram;
}  // namespace ehdse::obs

namespace ehdse::exec {

/// std::thread::hardware_concurrency(), never less than 1.
std::size_t default_concurrency() noexcept;

class thread_pool {
public:
    /// `threads` worker threads; 0 selects default_concurrency().
    explicit thread_pool(std::size_t threads = 0);

    /// Joins after draining every queued task.
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue fire-and-forget work. The task must not throw — an escaping
    /// exception terminates the process (use submit_future or parallel_for
    /// for exception propagation). Throws std::logic_error after shutdown
    /// has begun.
    void submit(task_fn task);

    /// Enqueue work and obtain its result (or exception) via a future.
    template <typename F>
    auto submit_future(F&& f)
        -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using result_t = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<result_t()>>(
            std::forward<F>(f));
        std::future<result_t> future = task->get_future();
        submit([task] { (*task)(); });
        return future;
    }

    /// Run body(0) .. body(n-1), blocking until all complete. Work is
    /// split into ~4 chunks per worker. When called from one of this
    /// pool's own workers the range runs inline on the calling thread
    /// (a nested fan-out must not park a worker slot waiting for tasks
    /// queued behind it). The first exception a body throws is rethrown
    /// on the calling thread after every chunk has finished.
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& body);

    /// True when the calling thread is one of this pool's workers.
    bool on_worker_thread() const noexcept;

    /// Lifetime totals, independent of any metrics registry.
    struct totals {
        std::uint64_t submitted = 0;
        std::uint64_t executed = 0;
        std::uint64_t stolen = 0;
    };
    totals counters() const noexcept;

private:
    void worker_loop(std::size_t index);
    bool try_get_task(std::size_t index, detail::task_item& out);
    void run_task(detail::task_item& item);
    void note_dequeue();

    std::vector<std::unique_ptr<detail::task_queue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex sleep_mutex_;
    std::condition_variable wake_;
    std::atomic<std::size_t> queued_{0};   ///< tasks in queues, not yet taken
    std::atomic<std::size_t> next_queue_{0};
    std::atomic<bool> stop_{false};

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> stolen_{0};

    // Cached instruments; all nullptr when no registry was installed at
    // construction time.
    obs::counter* tasks_counter_ = nullptr;
    obs::counter* steal_counter_ = nullptr;
    obs::gauge* depth_gauge_ = nullptr;
    obs::histogram* wait_hist_ = nullptr;
    obs::histogram* run_hist_ = nullptr;
};

}  // namespace ehdse::exec
