// Pool-or-sequential batch helpers — the one API the flow, the
// optimisers and the robustness sweep use for fan-out, so "no pool" and
// "pool of 1" and "pool of N" are the same call site. Results are always
// produced in input order; with a pure body the output is identical
// whichever path runs, which is what the determinism tests pin down.
#pragma once

#include <functional>
#include <vector>

#include "exec/thread_pool.hpp"

namespace ehdse::exec {

/// Run body(0) .. body(n-1). Inline on the calling thread when `pool` is
/// null, has fewer than two workers, or the range is trivial; otherwise
/// fans out via pool->parallel_for (which blocks until completion and
/// rethrows the first body exception).
void parallel_for(thread_pool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Evaluate make(i) for i in [0, n) into a vector, preserving order.
/// T must be default-constructible.
template <typename T, typename Make>
std::vector<T> map_indexed(thread_pool* pool, std::size_t n, Make&& make) {
    std::vector<T> out(n);
    parallel_for(pool, n, [&](std::size_t i) { out[i] = make(i); });
    return out;
}

}  // namespace ehdse::exec
