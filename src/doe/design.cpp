#include "doe/design.hpp"

#include <limits>
#include <numeric>
#include <stdexcept>

#include "doe/d_optimal.hpp"
#include "doe/designs.hpp"
#include "doe/sampling.hpp"
#include "numeric/rng.hpp"

namespace ehdse::doe {

namespace {

enum class family { d_optimal, full_factorial, central_composite, box_behnken, lhs };

struct family_entry {
    family kind;
    const char* name;
    const char* description;
    bool uses_runs;
    bool uses_levels;
};

constexpr family_entry k_families[] = {
    {family::d_optimal, "d_optimal",
     "D-optimal selection from the factorial grid, Fedorov exchange "
     "(paper default)",
     true, true},
    {family::full_factorial, "full_factorial",
     "every point of the `levels`-per-axis grid", false, true},
    {family::central_composite, "central_composite",
     "face-centred CCD: corners + axial + centre (2^k + 2k + 1 runs)",
     false, false},
    {family::box_behnken, "box_behnken",
     "edge midpoints + centre, k >= 3 (13 runs for k = 3)", false, false},
    {family::lhs, "lhs", "maximin Latin hypercube sample of `runs` points",
     true, false},
};

const family_entry& entry_of(std::string_view name, const char* who) {
    for (const family_entry& e : k_families)
        if (name == e.name) return e;
    throw std::invalid_argument(std::string(who) + ": unknown design '" +
                                std::string(name) + "' (valid: " +
                                design_names() + ")");
}

void check_request(const design_request& request, const char* who) {
    if (request.dimension == 0)
        throw std::invalid_argument(std::string(who) +
                                    ": dimension must be >= 1");
}

}  // namespace

const std::vector<design_info>& design_registry() {
    static const std::vector<design_info> registry = [] {
        std::vector<design_info> out;
        for (const family_entry& e : k_families)
            out.push_back({e.name, e.description, e.uses_runs, e.uses_levels});
        return out;
    }();
    return registry;
}

bool is_known_design(std::string_view name) noexcept {
    for (const family_entry& e : k_families)
        if (name == e.name) return true;
    return false;
}

std::string design_names() {
    std::string out;
    for (const family_entry& e : k_families) {
        if (!out.empty()) out += ", ";
        out += e.name;
    }
    return out;
}

bool design_uses_runs(std::string_view name) {
    return entry_of(name, "doe::design_uses_runs").uses_runs;
}

bool design_uses_levels(std::string_view name) {
    return entry_of(name, "doe::design_uses_levels").uses_levels;
}

std::vector<numeric::vec> design_candidates(const design_request& request,
                                            const design_options& options) {
    const family_entry& e = entry_of(request.name, "doe::design_candidates");
    check_request(request, "doe::design_candidates");
    switch (e.kind) {
        case family::d_optimal:
        case family::full_factorial:
            return full_factorial(request.dimension, request.factorial_levels);
        case family::central_composite:
            return central_composite(request.dimension);
        case family::box_behnken:
            return box_behnken(request.dimension);
        case family::lhs: {
            numeric::rng rng(options.seed);
            return maximin_latin_hypercube(request.dimension, request.runs,
                                           rng);
        }
    }
    throw std::logic_error("doe::design_candidates: unhandled family");
}

design_result select_design(const design_request& request,
                            std::vector<numeric::vec> candidates,
                            const design_options& options) {
    const family_entry& e = entry_of(request.name, "doe::select_design");
    design_result out;
    out.name = e.name;
    out.candidates = std::move(candidates);

    if (e.kind == family::d_optimal) {
        if (!request.basis)
            throw std::invalid_argument(
                "doe::select_design: d_optimal requires a model basis");
        d_optimal_options opts;
        opts.restarts = options.restarts;
        opts.max_passes = options.max_passes;
        opts.seed = options.seed;
        const d_optimal_result selection = d_optimal_design(
            out.candidates, request.basis, request.runs, opts);
        out.selected = selection.selected;
        out.log_det = selection.log_det;
        out.exchanges = selection.exchanges;
        out.restarts_used = selection.restarts_used;
    } else {
        // Fixed-shape and sampled families take every candidate.
        out.selected.resize(out.candidates.size());
        std::iota(out.selected.begin(), out.selected.end(), std::size_t{0});
        out.log_det = request.basis
                          ? selection_log_det(out.candidates, request.basis,
                                              out.selected)
                          : std::numeric_limits<double>::quiet_NaN();
    }

    out.points.reserve(out.selected.size());
    for (std::size_t idx : out.selected) out.points.push_back(out.candidates[idx]);
    return out;
}

design_result make_design(const design_request& request,
                          const design_options& options) {
    return select_design(request, design_candidates(request, options), options);
}

}  // namespace ehdse::doe
