// Classical designs of experiments over the coded [-1, 1]^k box
// (paper section II-B): full factorial, central composite, Box–Behnken.
// Points are returned in coded units; decode through rsm::design_space.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace ehdse::doe {

/// All combinations of `levels` equally spaced values per factor across k
/// factors (levels >= 2). 3-level full factorial in 3 vars = 27 points,
/// the candidate set the paper's D-optimal selection draws from.
std::vector<numeric::vec> full_factorial(std::size_t k, std::size_t levels);

/// Two-level full factorial (the 2^k cube corners).
std::vector<numeric::vec> factorial_corners(std::size_t k);

/// Central composite design: cube corners + 2k axial points at +-alpha +
/// `center_runs` centre replicates. alpha = 1 gives the face-centred CCD
/// (keeps points inside the box).
std::vector<numeric::vec> central_composite(std::size_t k, double alpha = 1.0,
                                            std::size_t center_runs = 1);

/// Box–Behnken design: midpoints of the cube edges (pairs at +-1, rest 0) +
/// centre replicates. Defined for k >= 3.
std::vector<numeric::vec> box_behnken(std::size_t k, std::size_t center_runs = 1);

}  // namespace ehdse::doe
