// D-optimal experimental design by Fedorov exchange (paper section II-B,
// following Unal et al. [11]).
//
// Given a candidate set of coded points and a model basis, select n runs
// maximising det(X' X) — the determinant of the information matrix — so a
// quadratic model can be fitted from far fewer simulations than a full
// factorial (10 instead of 27 in the paper's 3-variable case).
//
// The exchange algorithm starts from a random non-singular n-subset and
// repeatedly performs the single (selected-point, candidate) swap with the
// best determinant gain until no swap improves; several random restarts
// guard against local optima. Determinants are evaluated in log space via
// LU to stay robust when the information matrix is ill-scaled.
#pragma once

#include <functional>
#include <vector>

#include "numeric/matrix.hpp"
#include "numeric/rng.hpp"

namespace ehdse::doe {

/// Expansion of a coded point into model basis terms (e.g.
/// rsm::quadratic_basis). Must return vectors of a fixed length p.
using basis_fn = std::function<numeric::vec(const numeric::vec&)>;

struct d_optimal_options {
    std::size_t restarts = 8;        ///< independent random starts
    std::size_t max_passes = 100;    ///< exchange passes per start
    std::uint64_t seed = 0xd0e5eedULL;
};

struct d_optimal_result {
    std::vector<std::size_t> selected;  ///< indices into the candidate set
    double log_det = 0.0;               ///< log det(X'X) of the selection
    std::size_t exchanges = 0;          ///< accepted swaps across all starts
    std::size_t restarts_used = 0;
};

/// Select `n_runs` candidates maximising det(X'X).
/// Requires n_runs >= basis dimension p and candidates.size() >= n_runs.
d_optimal_result d_optimal_design(const std::vector<numeric::vec>& candidates,
                                  const basis_fn& basis, std::size_t n_runs,
                                  const d_optimal_options& options = {});

/// log det(X'X) for an explicit selection (utility for tests/benches;
/// -inf when singular).
double selection_log_det(const std::vector<numeric::vec>& candidates,
                         const basis_fn& basis,
                         const std::vector<std::size_t>& selected);

/// D-efficiency of design A relative to design B (both with p-term basis):
/// (det_A / det_B)^(1/p) adjusted for run counts, the standard comparison
/// metric printed by bench_doe_comparison.
double relative_d_efficiency(double log_det_a, std::size_t runs_a,
                             double log_det_b, std::size_t runs_b,
                             std::size_t term_count);

}  // namespace ehdse::doe
