#include "doe/designs.hpp"

#include <cmath>
#include <stdexcept>

namespace ehdse::doe {

std::vector<numeric::vec> full_factorial(std::size_t k, std::size_t levels) {
    if (k == 0) throw std::invalid_argument("full_factorial: k must be > 0");
    if (levels < 2) throw std::invalid_argument("full_factorial: need >= 2 levels");

    std::vector<double> level_values(levels);
    for (std::size_t l = 0; l < levels; ++l)
        level_values[l] = -1.0 + 2.0 * static_cast<double>(l) /
                                     static_cast<double>(levels - 1);

    std::size_t total = 1;
    for (std::size_t i = 0; i < k; ++i) {
        if (total > 1'000'000 / levels)
            throw std::invalid_argument("full_factorial: design too large");
        total *= levels;
    }

    std::vector<numeric::vec> points;
    points.reserve(total);
    for (std::size_t idx = 0; idx < total; ++idx) {
        numeric::vec p(k);
        std::size_t rem = idx;
        for (std::size_t i = 0; i < k; ++i) {
            p[i] = level_values[rem % levels];
            rem /= levels;
        }
        points.push_back(std::move(p));
    }
    return points;
}

std::vector<numeric::vec> factorial_corners(std::size_t k) {
    return full_factorial(k, 2);
}

std::vector<numeric::vec> central_composite(std::size_t k, double alpha,
                                            std::size_t center_runs) {
    if (alpha <= 0.0)
        throw std::invalid_argument("central_composite: alpha must be > 0");
    std::vector<numeric::vec> points = factorial_corners(k);
    for (std::size_t i = 0; i < k; ++i) {
        numeric::vec lo(k, 0.0), hi(k, 0.0);
        lo[i] = -alpha;
        hi[i] = alpha;
        points.push_back(std::move(lo));
        points.push_back(std::move(hi));
    }
    for (std::size_t r = 0; r < center_runs; ++r)
        points.emplace_back(k, 0.0);
    return points;
}

std::vector<numeric::vec> box_behnken(std::size_t k, std::size_t center_runs) {
    if (k < 3) throw std::invalid_argument("box_behnken: defined for k >= 3");
    std::vector<numeric::vec> points;
    for (std::size_t i = 0; i < k; ++i)
        for (std::size_t j = i + 1; j < k; ++j)
            for (int si : {-1, 1})
                for (int sj : {-1, 1}) {
                    numeric::vec p(k, 0.0);
                    p[i] = si;
                    p[j] = sj;
                    points.push_back(std::move(p));
                }
    for (std::size_t r = 0; r < center_runs; ++r)
        points.emplace_back(k, 0.0);
    return points;
}

}  // namespace ehdse::doe
