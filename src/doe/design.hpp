// Named experimental-design families behind one interface — the design
// stage of the paper's pipeline, selectable by name through the canonical
// spec (spec::flow_spec::design) the same way surrogates and optimisers
// are. make_design resolves a design_request to a coded point set:
//
//   d_optimal        candidate grid + Fedorov exchange (paper default)
//   full_factorial   the whole `levels`-per-axis grid
//   central_composite  face-centred CCD (corners + axial + centre)
//   box_behnken      edge midpoints + centre (k >= 3)
//   lhs              maximin Latin hypercube sample
//
// Two-step access (design_candidates then select_design) exists so the
// flow can time candidate generation and run selection as separate
// observability phases; make_design composes them for everyone else.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "numeric/matrix.hpp"

namespace ehdse::doe {

/// What to build: the serialisable description of one design.
struct design_request {
    std::string name = "d_optimal";
    std::size_t dimension = 3;
    /// Run budget; read by d_optimal (selection size) and lhs (sample
    /// size), ignored by the fixed-shape families.
    std::size_t runs = 10;
    /// Candidate grid levels per axis; read by d_optimal and
    /// full_factorial only.
    std::size_t factorial_levels = 3;
    /// Model basis for information-matrix criteria (d_optimal selection,
    /// log det reporting). Supplied by the caller so doe need not depend
    /// on rsm; required for d_optimal, optional elsewhere.
    std::function<numeric::vec(const numeric::vec&)> basis;
};

/// Algorithmic knobs shared by the stochastic families (d_optimal
/// exchange restarts, lhs jitter); deterministic given the seed.
struct design_options {
    std::size_t restarts = 8;      ///< d_optimal random starts
    std::size_t max_passes = 100;  ///< d_optimal exchange passes per start
    std::uint64_t seed = 0xd0e5eedULL;
};

/// A resolved design: the candidate set it was drawn from, the selected
/// indices, and the selected coded points (points[i] ==
/// candidates[selected[i]]).
struct design_result {
    std::string name;
    std::vector<numeric::vec> candidates;
    std::vector<std::size_t> selected;
    std::vector<numeric::vec> points;
    /// log det(X'X) of the selection under request.basis; NaN when no
    /// basis was supplied, -inf when the information matrix is singular.
    double log_det = 0.0;
    std::size_t exchanges = 0;      ///< d_optimal accepted swaps
    std::size_t restarts_used = 0;  ///< d_optimal restarts taken
};

/// One registry row: the spellings --list-designs prints.
struct design_info {
    std::string name;
    std::string description;
    bool uses_runs = false;    ///< whether request.runs is observable
    bool uses_levels = false;  ///< whether request.factorial_levels is
};

/// Registered design families, in presentation order.
const std::vector<design_info>& design_registry();

/// True when `name` is a registered design family.
bool is_known_design(std::string_view name) noexcept;

/// Comma-separated registered names, for error messages.
std::string design_names();

/// Whether the named family reads request.runs / request.factorial_levels
/// (spec canonicalisation resets unread knobs). Throws for unknown names.
bool design_uses_runs(std::string_view name);
bool design_uses_levels(std::string_view name);

/// The candidate set the named family draws from (the full grid for
/// d_optimal / full_factorial, the design itself for the fixed-shape and
/// sampled families). Throws std::invalid_argument for an unknown name
/// (offender named, valid choices listed) or an infeasible request.
std::vector<numeric::vec> design_candidates(const design_request& request,
                                            const design_options& options = {});

/// Select the runs from a candidate set produced by design_candidates
/// (the d_optimal exchange; identity selection for every other family).
design_result select_design(const design_request& request,
                            std::vector<numeric::vec> candidates,
                            const design_options& options = {});

/// design_candidates + select_design in one call.
design_result make_design(const design_request& request,
                          const design_options& options = {});

}  // namespace ehdse::doe
