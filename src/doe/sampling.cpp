#include "doe/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "numeric/decomp.hpp"

namespace ehdse::doe {

std::vector<numeric::vec> latin_hypercube(std::size_t k, std::size_t n,
                                          numeric::rng& rng) {
    if (k == 0 || n == 0)
        throw std::invalid_argument("latin_hypercube: k and n must be > 0");
    std::vector<numeric::vec> points(n, numeric::vec(k));
    for (std::size_t axis = 0; axis < k; ++axis) {
        const auto order = rng.permutation(n);
        for (std::size_t i = 0; i < n; ++i) {
            // Stratum [order[i], order[i]+1) / n mapped onto [-1, 1].
            const double u =
                (static_cast<double>(order[i]) + rng.uniform()) / static_cast<double>(n);
            points[i][axis] = 2.0 * u - 1.0;
        }
    }
    return points;
}

double min_pairwise_distance(const std::vector<numeric::vec>& points) {
    if (points.size() < 2) return 0.0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < points.size(); ++i)
        for (std::size_t j = i + 1; j < points.size(); ++j) {
            double d2 = 0.0;
            for (std::size_t a = 0; a < points[i].size(); ++a) {
                const double d = points[i][a] - points[j][a];
                d2 += d * d;
            }
            best = std::min(best, d2);
        }
    return std::sqrt(best);
}

std::vector<numeric::vec> maximin_latin_hypercube(std::size_t k, std::size_t n,
                                                  numeric::rng& rng,
                                                  std::size_t attempts) {
    if (attempts == 0)
        throw std::invalid_argument("maximin_latin_hypercube: attempts must be > 0");
    std::vector<numeric::vec> best;
    double best_d = -1.0;
    for (std::size_t a = 0; a < attempts; ++a) {
        auto candidate = latin_hypercube(k, n, rng);
        const double d = min_pairwise_distance(candidate);
        if (d > best_d) {
            best_d = d;
            best = std::move(candidate);
        }
    }
    return best;
}

double a_criterion(const numeric::matrix& design_matrix) {
    const numeric::lu_decomposition lu(design_matrix.gram());
    if (lu.singular())
        throw std::domain_error("a_criterion: singular information matrix");
    const numeric::matrix inv = lu.inverse();
    double trace = 0.0;
    for (std::size_t i = 0; i < inv.rows(); ++i) trace += inv.at_unchecked(i, i);
    return trace;
}

double i_criterion(const numeric::matrix& design_matrix,
                   const std::vector<numeric::vec>& candidates,
                   const std::function<numeric::vec(const numeric::vec&)>& basis) {
    if (candidates.empty())
        throw std::invalid_argument("i_criterion: empty candidate set");
    const numeric::lu_decomposition lu(design_matrix.gram());
    if (lu.singular())
        throw std::domain_error("i_criterion: singular information matrix");
    const numeric::matrix inv = lu.inverse();
    double acc = 0.0;
    for (const auto& c : candidates) {
        const numeric::vec b = basis(c);
        acc += numeric::dot(b, inv * b);
    }
    return acc / static_cast<double>(candidates.size());
}

}  // namespace ehdse::doe
