#include "doe/d_optimal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "numeric/decomp.hpp"

namespace ehdse::doe {

namespace {

/// log det(X'X) from basis rows gathered by `selected`; -inf when singular.
double log_det_of(const numeric::matrix& basis_rows,
                  const std::vector<std::size_t>& selected) {
    numeric::matrix x;
    for (std::size_t idx : selected) x.append_row(basis_rows.row(idx));
    const numeric::lu_decomposition lu(x.gram());
    const auto [log_abs, sign] = lu.log_abs_determinant();
    // X'X is positive semi-definite: a negative-sign determinant can only
    // come from round-off on a singular matrix.
    return sign > 0 ? log_abs : -std::numeric_limits<double>::infinity();
}

/// Greedy regularised construction used when random starts keep landing on
/// singular subsets: add, one at a time, the candidate maximising the
/// ridge-regularised determinant.
std::vector<std::size_t> greedy_start(const numeric::matrix& basis_rows,
                                      std::size_t n_runs, numeric::rng& rng) {
    const std::size_t m = basis_rows.rows();
    const std::size_t p = basis_rows.cols();
    numeric::matrix info(p, p, 0.0);
    for (std::size_t i = 0; i < p; ++i) info.at_unchecked(i, i) = 1e-8;

    std::vector<std::size_t> selection;
    selection.reserve(n_runs);
    for (std::size_t step = 0; step < n_runs; ++step) {
        double best = -std::numeric_limits<double>::infinity();
        std::size_t best_j = rng.uniform_index(m);
        for (std::size_t j = 0; j < m; ++j) {
            numeric::matrix trial = info;
            const auto row = basis_rows.row(j);
            for (std::size_t a = 0; a < p; ++a)
                for (std::size_t b = 0; b < p; ++b)
                    trial.at_unchecked(a, b) += row[a] * row[b];
            const auto [log_abs, sign] = numeric::lu_decomposition(trial).log_abs_determinant();
            const double value = sign > 0 ? log_abs : best;
            if (value > best) {
                best = value;
                best_j = j;
            }
        }
        selection.push_back(best_j);
        const auto row = basis_rows.row(best_j);
        for (std::size_t a = 0; a < p; ++a)
            for (std::size_t b = 0; b < p; ++b)
                info.at_unchecked(a, b) += row[a] * row[b];
    }
    return selection;
}

}  // namespace

d_optimal_result d_optimal_design(const std::vector<numeric::vec>& candidates,
                                  const basis_fn& basis, std::size_t n_runs,
                                  const d_optimal_options& options) {
    if (candidates.empty())
        throw std::invalid_argument("d_optimal_design: empty candidate set");
    if (n_runs > candidates.size())
        throw std::invalid_argument("d_optimal_design: more runs than candidates");

    numeric::matrix basis_rows;
    for (const auto& c : candidates) basis_rows.append_row(basis(c));
    const std::size_t p = basis_rows.cols();
    const std::size_t m = basis_rows.rows();
    if (n_runs < p)
        throw std::invalid_argument(
            "d_optimal_design: need at least " + std::to_string(p) +
            " runs to estimate a " + std::to_string(p) + "-term model");

    numeric::rng rng(options.seed);
    d_optimal_result best;
    best.log_det = -std::numeric_limits<double>::infinity();

    for (std::size_t restart = 0; restart < options.restarts; ++restart) {
        ++best.restarts_used;

        // Non-singular random start, with a greedy fallback.
        std::vector<std::size_t> selection;
        double current = -std::numeric_limits<double>::infinity();
        for (int attempt = 0; attempt < 100 && !std::isfinite(current); ++attempt) {
            const auto perm = rng.permutation(m);
            selection.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(n_runs));
            current = log_det_of(basis_rows, selection);
        }
        if (!std::isfinite(current)) {
            selection = greedy_start(basis_rows, n_runs, rng);
            current = log_det_of(basis_rows, selection);
            if (!std::isfinite(current)) continue;  // candidate set too poor
        }

        // Fedorov exchange: steepest-ascent swaps until no improvement.
        for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
            double best_gain = 1e-10;
            std::size_t best_i = 0, best_j = 0;
            for (std::size_t i = 0; i < n_runs; ++i) {
                const std::size_t old = selection[i];
                for (std::size_t j = 0; j < m; ++j) {
                    if (j == old) continue;
                    selection[i] = j;
                    const double trial = log_det_of(basis_rows, selection);
                    if (trial - current > best_gain) {
                        best_gain = trial - current;
                        best_i = i;
                        best_j = j;
                    }
                }
                selection[i] = old;
            }
            if (best_gain <= 1e-10) break;
            selection[best_i] = best_j;
            current += best_gain;
            ++best.exchanges;
        }

        if (current > best.log_det) {
            best.log_det = current;
            best.selected = selection;
        }
    }

    if (!std::isfinite(best.log_det))
        throw std::domain_error(
            "d_optimal_design: no non-singular design found — candidate set "
            "cannot support the requested model");
    std::sort(best.selected.begin(), best.selected.end());
    return best;
}

double selection_log_det(const std::vector<numeric::vec>& candidates,
                         const basis_fn& basis,
                         const std::vector<std::size_t>& selected) {
    numeric::matrix basis_rows;
    for (const auto& c : candidates) basis_rows.append_row(basis(c));
    for (std::size_t idx : selected)
        if (idx >= candidates.size())
            throw std::out_of_range("selection_log_det: index outside candidate set");
    return log_det_of(basis_rows, selected);
}

double relative_d_efficiency(double log_det_a, std::size_t runs_a,
                             double log_det_b, std::size_t runs_b,
                             std::size_t term_count) {
    if (term_count == 0)
        throw std::invalid_argument("relative_d_efficiency: term_count must be > 0");
    const auto p = static_cast<double>(term_count);
    // Compare per-run information matrices M = X'X / n.
    const double log_ma = log_det_a - p * std::log(static_cast<double>(runs_a));
    const double log_mb = log_det_b - p * std::log(static_cast<double>(runs_b));
    return std::exp((log_ma - log_mb) / p);
}

}  // namespace ehdse::doe
