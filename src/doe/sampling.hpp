// Space-filling designs and alternative optimality metrics — extensions
// beyond the paper's D-optimal workflow, for users whose response is not
// well served by a three-level grid.
#pragma once

#include <functional>

#include "numeric/matrix.hpp"
#include "numeric/rng.hpp"

namespace ehdse::doe {

/// Latin hypercube sample of n points in the coded box [-1, 1]^k: each
/// axis is divided into n strata, each stratum hit exactly once, with the
/// in-stratum offset jittered.
std::vector<numeric::vec> latin_hypercube(std::size_t k, std::size_t n,
                                          numeric::rng& rng);

/// Maximin-improved Latin hypercube: draws `attempts` LHS designs and
/// keeps the one maximising the minimum pairwise distance.
std::vector<numeric::vec> maximin_latin_hypercube(std::size_t k, std::size_t n,
                                                  numeric::rng& rng,
                                                  std::size_t attempts = 32);

/// Minimum pairwise Euclidean distance of a design (0 for < 2 points).
double min_pairwise_distance(const std::vector<numeric::vec>& points);

/// A-optimality value: trace((X'X)^-1) for a basis-expanded design —
/// smaller is better. Throws std::domain_error when singular.
double a_criterion(const numeric::matrix& design_matrix);

/// I-optimality (average prediction variance) over a candidate set:
/// mean over candidates c of b(c)' (X'X)^-1 b(c), with b the same basis
/// used to build `design_matrix`. Smaller is better.
double i_criterion(const numeric::matrix& design_matrix,
                   const std::vector<numeric::vec>& candidates,
                   const std::function<numeric::vec(const numeric::vec&)>& basis);

}  // namespace ehdse::doe
