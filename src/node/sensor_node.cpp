#include "node/sensor_node.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ehdse::node {

node_energy_model derive_energy_model(const node_params& p) {
    node_energy_model m{};
    m.active_time_s = p.wakeup_time_s + p.sensing_time_s + p.tx_time_s;
    m.charge_per_tx_c = p.wakeup_current_a * p.wakeup_time_s +
                        p.sensing_current_a * p.sensing_time_s +
                        p.tx_current_a * p.tx_time_s;
    m.energy_per_tx_j = m.charge_per_tx_c * p.nominal_supply_v;
    // Equivalent resistance such that V^2/R over the burst dissipates the
    // same energy: R = V * t_active / charge.
    m.r_transmit_ohm = p.nominal_supply_v * m.active_time_s / m.charge_per_tx_c;
    m.r_sleep_ohm = p.nominal_supply_v / p.sleep_current_a;
    return m;
}

sensor_node::sensor_node(sim::sim_context& sim, harvester::plant& plant,
                         node_params params, double first_wake_s)
    : sim::process(sim), plant_(plant), params_(params) {
    if (params_.fast_interval_s <= 0.0)
        throw std::invalid_argument("sensor_node: fast interval must be > 0");
    if (params_.low_band_interval_s <= 0.0)
        throw std::invalid_argument("sensor_node: low-band interval must be > 0");
    if (params_.cutoff_voltage_v > params_.low_band_voltage_v)
        throw std::invalid_argument("sensor_node: cutoff voltage above low band");

    burst_charge_c_ = params_.wakeup_current_a * params_.wakeup_time_s +
                      params_.sensing_current_a * params_.sensing_time_s +
                      params_.tx_current_a * params_.tx_time_s;

    // The sleep floor is a sustained draw for the whole run.
    plant_.set_sustained_draw("node.sleep", params_.sleep_current_a);
    wake_after(first_wake_s);
}

double sensor_node::burst_energy_at(double v) const {
    return burst_charge_c_ * v;
}

double sensor_node::interval_at(double v) const {
    if (v < params_.cutoff_voltage_v)
        return std::numeric_limits<double>::infinity();
    if (params_.policy == tx_policy::banded) {
        return v < params_.low_band_voltage_v ? params_.low_band_interval_s
                                              : params_.fast_interval_s;
    }
    // Proportional: log-interpolate between the slow interval at the
    // cut-off and the fast interval at proportional_full_v.
    if (v >= params_.proportional_full_v) return params_.fast_interval_s;
    const double frac = (v - params_.cutoff_voltage_v) /
                        (params_.proportional_full_v - params_.cutoff_voltage_v);
    return params_.low_band_interval_s *
           std::pow(params_.fast_interval_s / params_.low_band_interval_s, frac);
}

void sensor_node::enable_telemetry(std::function<double(double)> temperature_source,
                                   std::size_t max_samples) {
    if (!temperature_source)
        throw std::invalid_argument("sensor_node: null temperature source");
    if (max_samples == 0)
        throw std::invalid_argument("sensor_node: telemetry capacity must be > 0");
    temperature_source_ = std::move(temperature_source);
    telemetry_cap_ = max_samples;
    telemetry_.clear();
}

void sensor_node::activate() {
    const double v = plant_.storage_voltage();

    if (v < params_.cutoff_voltage_v) {
        // Table II row 1: no transmission; re-check on the slow cadence.
        ++suppressed_;
        wake_after(params_.low_band_interval_s);
        return;
    }

    // Transmit now: the 4.5 ms burst is applied as an instantaneous charge
    // withdrawal (it is ~10^-6 of the storage time constant).
    plant_.withdraw(burst_energy_at(v), "node.transmission");
    ++transmissions_;
    if (v < params_.low_band_voltage_v) ++low_band_tx_;

    if (temperature_source_) {
        if (telemetry_.size() >= telemetry_cap_)
            telemetry_.erase(telemetry_.begin());  // keep the newest packets
        telemetry_.push_back(
            {sim().now(), temperature_source_(sim().now()), v});
    }

    // Next burst cannot start before the current one finished.
    const node_energy_model m = derive_energy_model(params_);
    wake_after(std::max(interval_at(v), m.active_time_s));
}

}  // namespace ehdse::node
