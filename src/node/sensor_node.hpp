// eZ430-RF2500 wireless sensor node model (paper section IV-B).
//
// Behaviour (paper Table II): the node reads the supercapacitor voltage and
//   * below 2.7 V      -> no transmission (re-check periodically),
//   * 2.7 V .. 2.8 V   -> transmit every 1 minute,
//   * above 2.8 V      -> transmit every `fast_interval` (the x3 parameter).
//
// Each transmission (paper Table III) is wake-up (1 ms @ 4.5 mA), sensing
// (1.5 ms @ 13.4 mA) and transmission (2 ms @ 26.8 mA) — about 227 uJ at
// 2.8 V — plus a 0.5 uA sleep floor, equivalent to 167 ohm while
// transmitting and 5.8 Mohm asleep (paper eq. 8).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harvester/plant.hpp"
#include "sim/simulator.hpp"

namespace ehdse::node {

/// Transmission scheduling policy.
enum class tx_policy {
    /// Paper Table II: three discrete voltage bands.
    banded,
    /// Extension: the interval interpolates continuously (in log space)
    /// between the fast interval at `proportional_full_v` and the slow one
    /// at the cut-off — the "transmission interval should depend on the
    /// available energy" idea without the 2.8 V cliff.
    proportional,
};

/// Electrical/timing parameters, defaulted to the published measurements.
struct node_params {
    // Table III — current draw per phase.
    double sleep_current_a = 0.5e-6;
    double wakeup_time_s = 1.0e-3;
    double wakeup_current_a = 4.5e-3;
    double sensing_time_s = 1.5e-3;
    double sensing_current_a = 13.4e-3;
    double tx_time_s = 2.0e-3;
    double tx_current_a = 26.8e-3;

    // Table II — voltage-banded policy.
    double cutoff_voltage_v = 2.7;    ///< below: no transmission
    double low_band_voltage_v = 2.8;  ///< below: slow interval
    double low_band_interval_s = 60.0;
    double fast_interval_s = 5.0;     ///< x3, the optimisation parameter

    tx_policy policy = tx_policy::banded;
    /// proportional policy: voltage at/above which the fast interval applies.
    double proportional_full_v = 2.9;

    /// Supply used for the paper-style constant-voltage energy figures.
    double nominal_supply_v = 2.8;
};

/// Derived quantities reproducing the numbers quoted in the paper.
struct node_energy_model {
    double active_time_s;        ///< 4.5 ms total burst
    double charge_per_tx_c;      ///< integral of current over the burst
    double energy_per_tx_j;      ///< at the nominal supply (paper: ~227 uJ)
    double r_transmit_ohm;       ///< equivalent resistance while transmitting
    double r_sleep_ohm;          ///< equivalent resistance asleep (~5.8 Mohm)
};

/// Compute the derived model from a parameter set.
node_energy_model derive_energy_model(const node_params& params);

/// One transmitted packet's payload — the node reports the sensed
/// temperature and the supercapacitor voltage (paper Fig. 3).
struct telemetry_sample {
    double time_s = 0.0;
    double temperature_c = 0.0;
    double supercap_v = 0.0;
};

/// The node as a digital process on the mixed-signal kernel.
class sensor_node final : public sim::process {
public:
    /// `plant` must outlive the node. The node registers its sleep draw on
    /// construction and schedules its first wake-up at t = first_wake.
    sensor_node(sim::sim_context& sim, harvester::plant& plant,
                node_params params = {}, double first_wake_s = 0.0);

    /// Attach an environment-temperature source (degrees C as a function of
    /// simulation time) and start logging one telemetry_sample per
    /// transmission, up to `max_samples` (oldest kept). Without a source no
    /// log is kept — hour-long DOE runs stay allocation-light.
    void enable_telemetry(std::function<double(double)> temperature_source,
                          std::size_t max_samples = 100000);

    /// Logged packets (empty unless telemetry was enabled).
    const std::vector<telemetry_sample>& telemetry() const noexcept {
        return telemetry_;
    }

    const node_params& params() const noexcept { return params_; }

    /// Number of completed transmissions.
    std::uint64_t transmissions() const noexcept { return transmissions_; }

    /// Wake-ups that found the store below the cut-off (no transmission).
    std::uint64_t suppressed_wakeups() const noexcept { return suppressed_; }

    /// Transmissions performed in the slow (2.7–2.8 V) band.
    std::uint64_t low_band_transmissions() const noexcept { return low_band_tx_; }

    /// Energy drawn per transmission burst at storage voltage v.
    double burst_energy_at(double v) const;

    /// Interval the active policy commands at storage voltage v
    /// (infinity below the cut-off).
    double interval_at(double v) const;

private:
    void activate() override;

    harvester::plant& plant_;
    node_params params_;
    double burst_charge_c_;  ///< charge consumed by one wake/sense/tx burst
    std::uint64_t transmissions_ = 0;
    std::uint64_t suppressed_ = 0;
    std::uint64_t low_band_tx_ = 0;
    std::function<double(double)> temperature_source_;
    std::vector<telemetry_sample> telemetry_;
    std::size_t telemetry_cap_ = 0;
};

}  // namespace ehdse::node
