// Random-case generators for the whole pipeline: scenarios (stepped
// profiles, explicit frequency/amplitude schedule waveforms), design
// points, evaluation options, flow specs, and complete experiment specs.
//
// Invariants the generators promise:
//   * every generated value passes its validate() — properties about
//     VALID inputs never trip the validation layer by accident (the
//     error-path suites corrupt documents deliberately instead);
//   * durations are short (tens to hundreds of seconds) so a property
//     suite of ~10^2 cases stays inside the testkit CTest budget;
//   * everything is a pure function of the prng argument — case i of a
//     seed regenerates bit-identically.
//
// Shrinkers move a failing value towards the default-constructed spec
// one field group at a time, so a minimal counterexample reads as "the
// default experiment except these two fields".
#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "doe/design.hpp"
#include "harvester/harvester_model.hpp"
#include "numeric/matrix.hpp"
#include "opt/optimizer.hpp"
#include "rsm/surrogate.hpp"
#include "spec/experiment_spec.hpp"
#include "testkit/prng.hpp"

namespace ehdse::testkit {

/// Piecewise-constant waveform schedule [(t, value), ...]: first entry at
/// t = 0, strictly increasing times within [0, duration), values drawn
/// from [lo, hi). The shape every vibration frequency / amplitude
/// schedule shares.
inline std::vector<std::pair<double, double>> gen_schedule(
    prng& rng, double duration_s, double lo, double hi,
    std::size_t max_entries = 5) {
    const std::size_t n = 1 + rng.index(max_entries);
    std::vector<std::pair<double, double>> out;
    out.reserve(n);
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        out.emplace_back(t, rng.uniform(lo, hi));
        t += rng.uniform(0.05, 0.45) * duration_s;
        if (t >= duration_s) break;
    }
    return out;
}

/// Short, valid scenario: stepped profile by default, explicit frequency
/// and/or amplitude schedules (the paper's machine duty cycles) with some
/// probability. Frequencies stay inside the tuning table's usable band.
inline spec::scenario gen_scenario(prng& rng) {
    spec::scenario s;
    s.duration_s = rng.uniform(60.0, 600.0);
    s.accel_mg = rng.uniform(30.0, 90.0);
    s.f_start_hz = rng.uniform(58.0, 72.0);
    s.f_step_hz = rng.uniform(-5.0, 8.0);
    s.step_period_s = rng.uniform(40.0, 400.0);
    s.step_count = rng.index(3);
    s.v_initial = rng.uniform(2.4, 3.1);
    s.initial_position = rng.chance(0.2) ? static_cast<int>(rng.index(256)) : -1;
    if (rng.chance(0.3))
        s.frequency_schedule = gen_schedule(rng, s.duration_s, 58.0, 76.0);
    if (rng.chance(0.25))
        s.amplitude_schedule = gen_schedule(rng, s.duration_s, 0.0, 1.5);
    return s;
}

/// A design point anywhere in Table V's box (clock log-uniform — the
/// range spans 6 octaves).
inline spec::system_config gen_system_config(prng& rng) {
    spec::system_config c;
    c.mcu_clock_hz = rng.log_uniform(125e3, 8e6);
    c.watchdog_period_s = rng.uniform(60.0, 600.0);
    c.tx_interval_s = rng.log_uniform(0.005, 10.0);
    return c;
}

/// Evaluation options; transient fidelity only on request (it is ~5000x
/// slower, so suites opt in with a short scenario).
inline spec::evaluation_options gen_evaluation_options(
    prng& rng, bool allow_transient = false) {
    spec::evaluation_options e;
    e.record_traces = rng.chance(0.2);
    e.trace_interval_s = rng.uniform(0.5, 5.0);
    e.controller_seed = rng.next();
    e.model = (allow_transient && rng.chance(0.3)) ? spec::fidelity::transient
                                                   : spec::fidelity::envelope;
    e.frontend = rng.chance(0.25) ? spec::frontend_kind::mppt
                                  : spec::frontend_kind::diode_bridge;
    e.frontend_efficiency = rng.uniform(0.5, 1.0);
    return e;
}

/// Flow spec with small budgets: designs/surrogates/optimisers drawn from
/// the live registries, run counts sized so a whole flow stays ~100 ms.
inline spec::flow_spec gen_flow_spec(prng& rng) {
    spec::flow_spec f;
    const auto& designs = doe::design_registry();
    const auto& surrogates = rsm::surrogate_registry();
    f.design = designs[rng.index(designs.size())].name;
    f.surrogate = surrogates[rng.index(surrogates.size())].name;
    // Quadratic in 3 coded variables has 10 coefficients; keep every
    // run-count-honouring design fittable by every surrogate. Stepwise
    // backward elimination additionally needs an over-determined design
    // (n > 10), so it never pairs with a 10-run draw.
    f.doe_runs = (f.surrogate == "stepwise" ? 11 : 10) + rng.index(6);
    f.factorial_levels = 3;
    f.optimizer_seed = rng.next();
    f.replicates = rng.chance(0.2) ? 2 : 1;
    f.replicate_seed_base = 1 + rng.index(1000);
    f.parallel = rng.chance(0.5);
    f.jobs = 1 + rng.index(4);
    f.cache = rng.chance(0.8);
    f.cache_capacity = 16 + rng.index(128);
    if (rng.chance(0.5)) {
        const auto& opts = opt::optimizer_registry();
        const std::size_t count = 1 + rng.index(2);
        for (std::size_t i = 0; i < count; ++i)
            f.optimizers.push_back(opts[rng.index(opts.size())].name);
    }
    return f;
}

/// Harvester backend drawn from the live registry, biased towards the
/// paper's electromagnetic device (the default most properties exercise)
/// while still visiting every other entry regularly.
inline spec::harvester_spec gen_harvester_spec(prng& rng) {
    spec::harvester_spec h;
    if (rng.chance(0.3)) {
        const auto& backends = harvester::harvester_registry();
        h.model = backends[rng.index(backends.size())].name;
    }
    return h;
}

/// A complete, valid experiment spec (short scenario, small flow budget).
inline spec::experiment_spec gen_experiment_spec(prng& rng,
                                                 bool allow_transient = false) {
    spec::experiment_spec s;
    s.scn = gen_scenario(rng);
    s.harv = gen_harvester_spec(rng);
    s.config = gen_system_config(rng);
    s.eval = gen_evaluation_options(rng, allow_transient);
    s.flow = gen_flow_spec(rng);
    return s;
}

/// Coded point in [-1, 1]^k.
inline numeric::vec gen_coded_point(prng& rng, std::size_t k) {
    numeric::vec x(k, 0.0);
    for (std::size_t i = 0; i < k; ++i) x[i] = rng.uniform(-1.0, 1.0);
    return x;
}

/// Coefficients of a random full quadratic in k variables, in
/// rsm::quadratic_basis layout: 1, x_i, x_i^2, x_i*x_j (i < j).
inline numeric::vec gen_quadratic_coefficients(prng& rng, std::size_t k) {
    const std::size_t terms = 1 + k + k + k * (k - 1) / 2;
    numeric::vec beta(terms, 0.0);
    for (std::size_t i = 0; i < terms; ++i) beta[i] = rng.uniform(-50.0, 50.0);
    return beta;
}

/// Evaluate the quadratic described by gen_quadratic_coefficients at x.
inline double eval_quadratic(const numeric::vec& beta, const numeric::vec& x) {
    const std::size_t k = x.size();
    std::size_t j = 0;
    double y = beta[j++];
    for (std::size_t i = 0; i < k; ++i) y += beta[j++] * x[i];
    for (std::size_t i = 0; i < k; ++i) y += beta[j++] * x[i] * x[i];
    for (std::size_t a = 0; a < k; ++a)
        for (std::size_t b = a + 1; b < k; ++b) y += beta[j++] * x[a] * x[b];
    return y;
}

// ---------------------------------------------------------------------------
// Shrinking towards the default spec, one field group at a time.

namespace detail {

/// Append `candidate` when it differs from `current`.
template <typename T>
void push_if_changed(std::vector<T>& out, const T& current, T candidate) {
    if (!(candidate == current)) out.push_back(std::move(candidate));
}

}  // namespace detail

/// Candidates with one part or field group reset to its default — a
/// minimal counterexample keeps only the fields the failure needs.
inline std::vector<spec::experiment_spec> shrink_spec(
    const spec::experiment_spec& s) {
    const spec::experiment_spec defaults;
    std::vector<spec::experiment_spec> out;
    // Whole parts first (biggest simplification steps).
    {
        spec::experiment_spec c = s;
        c.scn = defaults.scn;
        detail::push_if_changed(out, s, std::move(c));
    }
    {
        spec::experiment_spec c = s;
        c.harv = defaults.harv;
        detail::push_if_changed(out, s, std::move(c));
    }
    {
        spec::experiment_spec c = s;
        c.config = defaults.config;
        detail::push_if_changed(out, s, std::move(c));
    }
    {
        spec::experiment_spec c = s;
        c.eval = defaults.eval;
        detail::push_if_changed(out, s, std::move(c));
    }
    {
        spec::experiment_spec c = s;
        c.flow = defaults.flow;
        detail::push_if_changed(out, s, std::move(c));
    }
    // Then individual fields of each part.
    const auto field = [&](auto mutate) {
        spec::experiment_spec c = s;
        mutate(c);
        detail::push_if_changed(out, s, std::move(c));
    };
    field([&](spec::experiment_spec& c) { c.scn.duration_s = defaults.scn.duration_s; });
    field([&](spec::experiment_spec& c) { c.scn.accel_mg = defaults.scn.accel_mg; });
    field([&](spec::experiment_spec& c) { c.scn.frequency_schedule.clear(); });
    field([&](spec::experiment_spec& c) { c.scn.amplitude_schedule.clear(); });
    field([&](spec::experiment_spec& c) { c.scn.v_initial = defaults.scn.v_initial; });
    field([&](spec::experiment_spec& c) { c.scn.initial_position = -1; });
    field([&](spec::experiment_spec& c) { c.eval.record_traces = false; });
    field([&](spec::experiment_spec& c) { c.eval.model = spec::fidelity::envelope; });
    field([&](spec::experiment_spec& c) {
        c.eval.frontend = spec::frontend_kind::diode_bridge;
    });
    field([&](spec::experiment_spec& c) { c.eval.controller_seed = defaults.eval.controller_seed; });
    field([&](spec::experiment_spec& c) { c.flow.design = defaults.flow.design; });
    field([&](spec::experiment_spec& c) { c.flow.surrogate = defaults.flow.surrogate; });
    field([&](spec::experiment_spec& c) { c.flow.optimizers.clear(); });
    field([&](spec::experiment_spec& c) { c.flow.replicates = defaults.flow.replicates; });
    field([&](spec::experiment_spec& c) { c.flow.parallel = defaults.flow.parallel; });
    field([&](spec::experiment_spec& c) { c.flow.cache = defaults.flow.cache; });
    field([&](spec::experiment_spec& c) {
        // Keep stepwise over-determined (n > 10) even when shrinking.
        c.flow.doe_runs = c.flow.surrogate == "stepwise"
                              ? std::max<std::size_t>(defaults.flow.doe_runs, 11)
                              : defaults.flow.doe_runs;
    });
    field([&](spec::experiment_spec& c) { c.flow.optimizer_seed = defaults.flow.optimizer_seed; });
    return out;
}

}  // namespace ehdse::testkit
