// Deterministic splitmix64 PRNG for the property-based test kit.
//
// Deliberately separate from numeric::rng (xoshiro256++): the production
// engine is part of the system under test, so the kit draws its test
// cases from an independent generator — a bug in one cannot mask a bug
// in the other. splitmix64 is tiny, has a known-answer test vector, and
// its state is a single word, which makes per-case and per-call streams
// trivial to derive: every stream is stream(seed, tag) for a 64-bit tag,
// so two runs with the same EHDSE_TESTKIT_SEED draw identical cases no
// matter how many threads or in what order the cases execute.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace ehdse::testkit {

/// Default seed of every property run (overridden by EHDSE_TESTKIT_SEED).
inline constexpr std::uint64_t k_default_seed = 0xeadd5e5eedULL;

/// One splitmix64 step: advances `state` and returns the next output.
inline std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// Stateless stream derivation: a fresh 64-bit value from (seed, tag).
/// Used to key per-case, per-call and per-request fault streams so the
/// draw order can never depend on thread scheduling.
inline std::uint64_t mix(std::uint64_t seed, std::uint64_t tag) noexcept {
    std::uint64_t state = seed ^ (0x94d049bb133111ebULL * (tag + 1));
    return splitmix64_next(state);
}

/// splitmix64 generator with the uniform helpers the kit's generators
/// need. Satisfies UniformRandomBitGenerator.
class prng {
public:
    using result_type = std::uint64_t;

    explicit prng(std::uint64_t seed = k_default_seed) noexcept
        : seed_(seed), state_(seed) {}

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

    result_type operator()() noexcept { return next(); }

    std::uint64_t next() noexcept { return splitmix64_next(state_); }

    /// The seed this stream started from (what a repro line reports).
    std::uint64_t seed() const noexcept { return seed_; }

    /// Derive an independent child stream without disturbing this one's
    /// relationship to the draws already made.
    prng fork() noexcept { return prng(next() ^ 0xa3ec647659359acdULL); }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform index in [0, n); n must be > 0.
    std::size_t index(std::size_t n) noexcept {
        return static_cast<std::size_t>(next() % n);
    }

    /// Uniform integer in [lo, hi] (inclusive).
    std::int64_t integer(std::int64_t lo, std::int64_t hi) noexcept {
        return lo + static_cast<std::int64_t>(
                        next() % static_cast<std::uint64_t>(hi - lo + 1));
    }

    /// True with probability p.
    bool chance(double p) noexcept { return uniform() < p; }

    /// Log-uniform double in [lo, hi); both must be > 0. Natural for
    /// parameters spanning orders of magnitude (clock 125 kHz..8 MHz).
    double log_uniform(double lo, double hi) noexcept;

private:
    std::uint64_t seed_;
    std::uint64_t state_;
};

/// The seed property runs use: EHDSE_TESTKIT_SEED when set (decimal or
/// 0x-prefixed hex), k_default_seed otherwise. Every failure repro line
/// prints the value in the same spelling this function parses.
inline std::uint64_t env_seed() {
    const char* env = std::getenv("EHDSE_TESTKIT_SEED");
    if (env == nullptr || *env == '\0') return k_default_seed;
    return std::strtoull(env, nullptr, 0);
}

/// Optional case-count override (nightly runs raise it): the value of
/// EHDSE_TESTKIT_CASES when set and positive, `fallback` otherwise.
inline std::size_t env_cases(std::size_t fallback) {
    const char* env = std::getenv("EHDSE_TESTKIT_CASES");
    if (env == nullptr || *env == '\0') return fallback;
    const unsigned long long parsed = std::strtoull(env, nullptr, 0);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Time budget in milliseconds for fuzz-style suites: EHDSE_FUZZ_MS when
/// set, `fallback` otherwise. 0 = no time budget (run the fixed case
/// count only).
inline double env_fuzz_ms(double fallback = 0.0) {
    const char* env = std::getenv("EHDSE_FUZZ_MS");
    if (env == nullptr || *env == '\0') return fallback;
    return std::strtod(env, nullptr);
}

inline double prng::log_uniform(double lo, double hi) noexcept {
    return lo * std::exp(uniform() * std::log(hi / lo));
}

}  // namespace ehdse::testkit
