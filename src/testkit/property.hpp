// Property harness: run a predicate over ~10^2 generated cases, shrink
// the first failure to a minimal counterexample, and report a one-line
// repro the developer can paste into a shell.
//
// Contract with the test:
//   * the generator is a pure function of the prng it is handed — case i
//     of seed S always generates the same value;
//   * the property signals failure by throwing (property_failure via
//     fail()/require(), or any std::exception — an unexpected
//     invalid_argument is as much a counterexample as an explicit one);
//   * shrinking re-runs the property on simpler candidates, so the
//     property must be safe to call repeatedly.
//
// On failure, check_result::report() contains
//     EHDSE_TESTKIT_SEED=0x... <binary> --gtest_filter=<Suite.Test>
// and re-running exactly that line regenerates case i verbatim: the
// case stream is keyed by mix(seed, i), independent of execution order.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__GLIBC__) || defined(__linux__)
#include <errno.h>  // program_invocation_short_name
#endif

#include "testkit/prng.hpp"

namespace ehdse::testkit {

/// What fail()/require() throw; any other std::exception counts as a
/// failure too (the kit distinguishes them only in the report text).
class property_failure : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

[[noreturn]] inline void fail(const std::string& message) {
    throw property_failure(message);
}

inline void require(bool condition, const std::string& message) {
    if (!condition) fail(message);
}

/// require() for approximate equality with a relative + absolute floor.
inline void require_near(double actual, double expected, double tol,
                         const std::string& what) {
    const double diff = actual > expected ? actual - expected : expected - actual;
    const double mag = expected > 0 ? expected : -expected;
    if (!(diff <= tol + tol * mag)) {
        std::ostringstream os;
        os << what << ": " << actual << " != " << expected << " (tol " << tol
           << ")";
        fail(os.str());
    }
}

struct property_options {
    /// Cases per run; EHDSE_TESTKIT_CASES raises/lowers it globally.
    std::size_t cases = 100;
    /// Stream seed; EHDSE_TESTKIT_SEED overrides.
    std::uint64_t seed = 0;  ///< 0 = env_seed()
    /// Candidate evaluations spent shrinking a failure.
    std::size_t max_shrink_steps = 500;
    /// When > 0, keep generating cases past `cases` until this much wall
    /// time has elapsed (EHDSE_FUZZ_MS feeds this for fuzz suites).
    double budget_ms = 0.0;

    std::size_t effective_cases() const { return env_cases(cases); }
    std::uint64_t effective_seed() const { return seed ? seed : env_seed(); }
};

template <typename T>
struct property_def {
    /// The --gtest_filter value of the owning test ("Suite.Test").
    std::string name;
    std::function<T(prng&)> generate;
    /// Throws to signal failure.
    std::function<void(const T&)> property;
    /// Optional: simpler candidates for a failing value, tried in order;
    /// shrinking restarts from every candidate that still fails.
    std::function<std::vector<T>(const T&)> shrink;
    /// Optional: render a counterexample for the failure report.
    std::function<std::string(const T&)> show;
};

template <typename T>
struct check_result {
    bool ok = true;
    std::size_t cases_run = 0;
    std::uint64_t seed = 0;
    /// Failing case details (meaningful when !ok).
    std::size_t failing_case = 0;
    std::optional<T> counterexample;
    std::size_t shrink_steps = 0;
    std::string message;
    std::string repro;

    /// Multi-line failure report for EXPECT_TRUE(result.ok) << report().
    std::string report() const {
        if (ok) return "ok (" + std::to_string(cases_run) + " cases)";
        std::string out = "property failed at case " +
                          std::to_string(failing_case) + ": " + message +
                          "\n  repro: " + repro;
        if (!shown.empty()) out += "\n  counterexample: " + shown;
        return out;
    }

    std::string shown;  ///< rendered counterexample (empty without show)
};

namespace detail {

inline std::string hex_seed(std::uint64_t seed) {
    std::ostringstream os;
    os << "0x" << std::hex << seed;
    return os.str();
}

inline std::string binary_name() {
#if defined(__GLIBC__)
    return program_invocation_short_name;
#else
    return "<test-binary>";
#endif
}

inline std::string repro_line(std::uint64_t seed, const std::string& name) {
    return "EHDSE_TESTKIT_SEED=" + hex_seed(seed) + " ./" + binary_name() +
           " --gtest_filter=" + name;
}

}  // namespace detail

/// Run the property. Never throws out of the harness itself: a failing
/// (or throwing) property lands in the returned check_result.
template <typename T>
check_result<T> run_property(const property_def<T>& def,
                             property_options options = {}) {
    check_result<T> out;
    out.seed = options.effective_seed();
    const std::size_t min_cases = options.effective_cases();
    const double budget = options.budget_ms > 0.0
                              ? options.budget_ms
                              : 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    const auto elapsed_ms = [&t0] {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    for (std::size_t i = 0;; ++i) {
        // A time budget, when set, governs alone (at least one case runs):
        // nightly runs raise EHDSE_FUZZ_MS to fuzz for minutes, smoke runs
        // lower it to cap wall time. Without one, the case count governs.
        if (budget > 0.0 ? (i > 0 && elapsed_ms() >= budget)
                         : i >= min_cases)
            break;
        ++out.cases_run;
        prng rng(mix(out.seed, i));
        T value = def.generate(rng);
        std::string message;
        try {
            def.property(value);
            continue;
        } catch (const property_failure& e) {
            message = e.what();
        } catch (const std::exception& e) {
            message = std::string("unexpected exception: ") + e.what();
        }

        // Shrink: greedily adopt the first simpler candidate that still
        // fails, restarting the candidate walk from it.
        T best = std::move(value);
        if (def.shrink) {
            bool improved = true;
            while (improved && out.shrink_steps < options.max_shrink_steps) {
                improved = false;
                for (T& candidate : def.shrink(best)) {
                    if (++out.shrink_steps > options.max_shrink_steps) break;
                    try {
                        def.property(candidate);
                    } catch (const std::exception& e) {
                        best = std::move(candidate);
                        message = e.what();
                        improved = true;
                        break;
                    }
                }
            }
        }

        out.ok = false;
        out.failing_case = i;
        out.message = std::move(message);
        out.repro = detail::repro_line(out.seed, def.name);
        if (def.show) out.shown = def.show(best);
        out.counterexample = std::move(best);
        return out;
    }
    return out;
}

/// Generic sequence shrinker (delta debugging): drop large chunks first,
/// then single elements. Element-level simplification can be layered by
/// the caller after the sequence is minimal.
template <typename T>
std::vector<std::vector<T>> shrink_sequence(const std::vector<T>& xs) {
    std::vector<std::vector<T>> out;
    const std::size_t n = xs.size();
    if (n == 0) return out;
    for (std::size_t chunk = n / 2; chunk >= 1; chunk /= 2) {
        for (std::size_t start = 0; start < n; start += chunk) {
            std::vector<T> candidate;
            candidate.reserve(n - chunk);
            for (std::size_t i = 0; i < n; ++i)
                if (i < start || i >= start + chunk) candidate.push_back(xs[i]);
            if (candidate.size() < n) out.push_back(std::move(candidate));
        }
        if (chunk == 1) break;
    }
    return out;
}

/// Scalar shrinker: candidates between `origin` (the simplest value) and
/// x, nearest-to-origin first.
inline std::vector<double> shrink_double(double x, double origin = 0.0) {
    std::vector<double> out;
    if (x == origin) return out;
    out.push_back(origin);
    out.push_back(origin + (x - origin) / 2.0);
    const double rounded = static_cast<double>(static_cast<long long>(x));
    if (rounded != x && rounded != origin) out.push_back(rounded);
    return out;
}

}  // namespace ehdse::testkit
