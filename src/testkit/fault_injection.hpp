// Deterministic fault injection for the whole evaluation stack.
//
// Every fault a wrapper injects is decided by a PRNG stream keyed on
// (fault seed, request content hash) — never on call order — so a flow
// running over a thread pool sees exactly the same faults in exactly the
// same runs as a sequential flow, and a reported EHDSE_TESTKIT_SEED
// reproduces the failure byte-for-byte. Three interposition points:
//
//   * faulty_evaluator  — overrides system_evaluator::evaluate to throw a
//     typed evaluator_fault before the run starts (exercises the flow's
//     error path), and overrides build_system() to wrap the analogue
//     model with...
//   * faulty_node_system — a node_system decorator injecting harvester
//     dropout windows (harvest derivative clamped to zero) and supercap
//     leakage steps (instantaneous voltage drops, optionally a NaN that
//     the simulator's non-finite halt must catch) at PRNG-chosen times;
//   * faulty_objective  — an opt::objective_fn wrapper returning NaN at
//     PRNG-chosen call indices (first call always clean so optimisers
//     keep a finite incumbent).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dse/node_system.hpp"
#include "dse/system_evaluator.hpp"
#include "opt/optimizer.hpp"
#include "spec/spec_hash.hpp"
#include "testkit/prng.hpp"

namespace ehdse::testkit {

/// Knobs for deterministic fault generation. All probabilities are per
/// evaluation request (dropout/leak/exception) or per objective call
/// (NaN); 0 disables that fault class entirely.
struct fault_options {
    std::uint64_t seed = k_default_seed;
    double dropout_probability = 0.0;    ///< run gets harvester dropout windows
    double leak_probability = 0.0;       ///< run gets supercap leakage steps
    double nan_probability = 0.0;        ///< a leak step writes NaN instead
    double exception_probability = 0.0;  ///< evaluate() throws evaluator_fault
};

/// A window during which the harvester delivers nothing.
struct dropout_window {
    double start_s = 0.0;
    double end_s = 0.0;
};

/// An instantaneous supercap disturbance at a fixed time.
struct leak_step {
    double at_s = 0.0;
    double drop_v = 0.0;    ///< voltage removed (clamped at 0 V)
    bool inject_nan = false;  ///< overwrite the voltage with NaN instead
};

/// The concrete faults one evaluation request will experience. Pure
/// function of (options.seed, request hash, horizon) — two calls with the
/// same request always get the same plan, regardless of thread or order.
struct fault_plan {
    std::vector<dropout_window> dropouts;
    std::vector<leak_step> leaks;
    bool throw_before_run = false;

    bool empty() const noexcept {
        return dropouts.empty() && leaks.empty() && !throw_before_run;
    }

    static fault_plan make(const fault_options& opts,
                           std::uint64_t request_hash, double duration_s) {
        prng r(mix(mix(opts.seed, 0xfa017ULL), request_hash));
        fault_plan plan;
        plan.throw_before_run = r.chance(opts.exception_probability);
        if (r.chance(opts.dropout_probability)) {
            const std::size_t n = r.integer(1, 2);
            for (std::size_t i = 0; i < n; ++i) {
                dropout_window w;
                w.start_s = r.uniform(0.0, 0.8 * duration_s);
                w.end_s = w.start_s +
                          r.uniform(0.05 * duration_s, 0.2 * duration_s);
                w.end_s = std::min(w.end_s, duration_s);
                plan.dropouts.push_back(w);
            }
        }
        if (r.chance(opts.leak_probability)) {
            const std::size_t n = r.integer(1, 3);
            for (std::size_t i = 0; i < n; ++i) {
                leak_step s;
                // Strictly inside the horizon so the event always fires.
                s.at_s = r.uniform(0.05 * duration_s, 0.95 * duration_s);
                s.drop_v = r.uniform(0.1, 1.0);
                s.inject_nan = r.chance(opts.nan_probability);
                plan.leaks.push_back(s);
            }
        }
        return plan;
    }
};

/// Typed failure injected by faulty_evaluator: distinguishable from any
/// production exception, so tests asserting the flow's error path know
/// the fault they planted is the one that surfaced.
class evaluator_fault : public std::runtime_error {
public:
    explicit evaluator_fault(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

/// node_system decorator applying a fault_plan to any analogue model:
/// inside a dropout window the harvested-energy derivative is clamped to
/// zero and the storage voltage may only fall; each leak step is a
/// scheduled event that drops (or NaN-corrupts) the storage voltage.
class faulty_node_system final : public dse::node_system {
public:
    faulty_node_system(std::unique_ptr<dse::node_system> inner,
                       fault_plan plan)
        : inner_(std::move(inner)), plan_(std::move(plan)) {}

    // -- analog_system ----------------------------------------------------
    std::size_t state_size() const override { return inner_->state_size(); }

    void derivatives(double t, std::span<const double> x,
                     std::span<double> dxdt) const override {
        inner_->derivatives(t, x, dxdt);
        if (in_dropout(t)) {
            const state_map ix = inner_->states();
            dxdt[ix.harvested] = 0.0;
            dxdt[ix.voltage] = std::min(dxdt[ix.voltage], 0.0);
        }
    }

    // -- node_system ------------------------------------------------------
    void attach(sim::sim_context& sim) override {
        inner_->attach(sim);
        const state_map ix = inner_->states();
        for (const leak_step& leak : plan_.leaks) {
            sim.at(leak.at_s, [&sim, ix, leak] {
                if (leak.inject_nan) {
                    sim.set_state(ix.voltage,
                                  std::numeric_limits<double>::quiet_NaN());
                } else {
                    sim.set_state(ix.voltage,
                                  std::max(0.0, sim.state_at(ix.voltage) -
                                                    leak.drop_v));
                }
            });
        }
    }

    std::vector<double> initial_state(double v0, int initial_position) override {
        return inner_->initial_state(v0, initial_position);
    }

    sim::ode_options suggested_ode_options() const override {
        return inner_->suggested_ode_options();
    }

    state_map states() const override { return inner_->states(); }

    const power::energy_ledger& ledger() const override {
        return inner_->ledger();
    }

    // -- harvester::plant -------------------------------------------------
    double storage_voltage() const override { return inner_->storage_voltage(); }
    void withdraw(double joules, const std::string& account) override {
        inner_->withdraw(joules, account);
    }
    void set_sustained_draw(const std::string& account, double amps) override {
        inner_->set_sustained_draw(account, amps);
    }
    int position() const override { return inner_->position(); }
    void set_position(int position) override { inner_->set_position(position); }
    double vibration_frequency() const override {
        return inner_->vibration_frequency();
    }
    double phase_lag() const override { return inner_->phase_lag(); }

    const fault_plan& plan() const noexcept { return plan_; }

private:
    bool in_dropout(double t) const noexcept {
        for (const dropout_window& w : plan_.dropouts)
            if (t >= w.start_s && t < w.end_s) return true;
        return false;
    }

    std::unique_ptr<dse::node_system> inner_;
    fault_plan plan_;
};

/// system_evaluator that injects the faults of a per-request fault_plan.
/// Drop-in anywhere a `const system_evaluator&` is taken (cached_evaluator,
/// run_rsm_flow): exception faults throw evaluator_fault before any
/// simulation starts; analogue faults wrap the node_system built by the
/// base class with faulty_node_system. Thread-safe and call-order
/// independent like the base class — the plan depends only on the request.
class faulty_evaluator : public dse::system_evaluator {
public:
    faulty_evaluator(dse::scenario scn, fault_options faults,
                     harvester::microgenerator_params gen = {},
                     power::supercapacitor_params cap = {},
                     power::rectifier_params rect = {})
        : system_evaluator(scn, gen, cap, rect), faults_(faults) {}

    /// Apply ONE fixed plan to every request instead of deriving it —
    /// lets a test pin an exact fault (e.g. a full-horizon dropout) and
    /// assert its physical consequence directly.
    faulty_evaluator(dse::scenario scn, fault_plan fixed)
        : system_evaluator(scn), fixed_(std::move(fixed)) {}

    /// The plan `evaluate(config, options)` will apply.
    fault_plan plan_for(const dse::system_config& config,
                        const dse::evaluation_options& options) const {
        if (fixed_) return *fixed_;
        return fault_plan::make(faults_,
                                spec::evaluation_request_hash(config, options),
                                scene().duration_s);
    }

    dse::evaluation_result evaluate(
        const dse::system_config& config,
        const dse::evaluation_options& options = {}) const override {
        if (plan_for(config, options).throw_before_run) {
            throw evaluator_fault(
                "testkit::faulty_evaluator: injected fault for request " +
                spec::spec_hash_hex(
                    spec::evaluation_request_hash(config, options)));
        }
        return system_evaluator::evaluate(config, options);
    }

    /// Batched requests take the scalar path one by one: the batch kernel
    /// bypasses build_system(), so running it here would silently drop the
    /// fault decoration. Per-request plans (and throw_before_run) behave
    /// exactly as under evaluate().
    std::vector<dse::evaluation_result> evaluate_batch(
        std::span<const dse::system_config> configs,
        const dse::evaluation_options& options = {}) const override {
        std::vector<dse::evaluation_result> out;
        out.reserve(configs.size());
        for (const dse::system_config& config : configs)
            out.push_back(evaluate(config, options));
        return out;
    }

protected:
    std::unique_ptr<dse::node_system> build_system(
        const dse::system_config& config,
        const dse::evaluation_options& options,
        const harvester::vibration_source& vib) const override {
        std::unique_ptr<dse::node_system> inner =
            system_evaluator::build_system(config, options, vib);
        fault_plan plan = plan_for(config, options);
        if (plan.empty()) return inner;
        return std::make_unique<faulty_node_system>(std::move(inner),
                                                    std::move(plan));
    }

private:
    fault_options faults_;
    std::optional<fault_plan> fixed_;
};

/// Wrap an optimiser objective so PRNG-chosen calls return NaN. The first
/// call is always clean, so every optimiser holds a finite incumbent that
/// a NaN can never displace (`nan > best` is false) — the property the
/// optimiser-robustness suite asserts. Deterministic in the call index;
/// intended for the single-threaded objective loops of the optimisers.
inline opt::objective_fn faulty_objective(opt::objective_fn inner,
                                          std::uint64_t seed,
                                          double nan_probability) {
    auto calls = std::make_shared<std::uint64_t>(0);
    return [inner = std::move(inner), seed, nan_probability,
            calls](const numeric::vec& x) -> double {
        const std::uint64_t i = (*calls)++;
        if (i > 0) {
            prng r(mix(seed, i));
            if (r.chance(nan_probability))
                return std::numeric_limits<double>::quiet_NaN();
        }
        return inner(x);
    };
}

}  // namespace ehdse::testkit
